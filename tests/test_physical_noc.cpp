// Floorplan + link-timing chain: router placement geometry, the
// wire-length -> cycles conversion across the process roadmap, and the
// physical annotation the topology factories fold into LinkSpec.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "soc/noc/floorplan.hpp"
#include "soc/noc/link_timing.hpp"
#include "soc/noc/topologies.hpp"
#include "soc/tech/process_node.hpp"

namespace soc::noc {
namespace {

constexpr double kDie = 100.0;  // 10 mm x 10 mm

std::vector<tech::ProcessNode> shrinking_roadmap() {
  return {*tech::find_node("130nm"), *tech::find_node("90nm"),
          *tech::find_node("65nm"), *tech::find_node("50nm"),
          *tech::find_node("32nm")};
}

// ------------------------------------------------------------- Floorplan ---

TEST(Floorplan, MeshLinksAreOnePitchEach) {
  const auto topo = make_mesh(16);
  const Floorplan fp(*topo, kDie);
  EXPECT_DOUBLE_EQ(fp.die_edge_mm(), 10.0);
  // 4x4 grid on a 10 mm edge: every neighbor link spans one 2.5 mm pitch.
  for (std::size_t li = 0; li < topo->links().size(); ++li) {
    EXPECT_NEAR(fp.link_length_mm(li), 2.5, 1e-12);
  }
  EXPECT_NEAR(fp.total_wire_mm(), 2.5 * static_cast<double>(topo->links().size()),
              1e-9);
}

TEST(Floorplan, CrossbarOutwiresMeshAtSameDie) {
  // The crossbar's star wiring must cost more total and more worst-case
  // length than the mesh's neighbor wiring — the geometric fact behind the
  // paper's nanometer wall.
  const auto mesh = make_mesh(16);
  const auto xbar = make_crossbar(16);
  const Floorplan fm(*mesh, kDie);
  const Floorplan fx(*xbar, kDie);
  EXPECT_GT(fx.total_wire_mm(), fm.total_wire_mm());
  EXPECT_GT(fx.max_link_mm(), 2.0 * fm.max_link_mm());
  // Terminal-less crossbar core relaxes to the die center.
  const auto& core = fx.router_position(16);
  EXPECT_NEAR(core.x, 5.0, 1e-9);
  EXPECT_NEAR(core.y, 5.0, 1e-9);
}

TEST(Floorplan, AllTopologiesPlaceRoutersOnDie) {
  for (const TopologyKind k :
       {TopologyKind::kBus, TopologyKind::kRing, TopologyKind::kBinaryTree,
        TopologyKind::kFatTree, TopologyKind::kMesh2D, TopologyKind::kTorus2D,
        TopologyKind::kCrossbar}) {
    const auto topo = make_topology(k, 12);
    const Floorplan fp(*topo, kDie);
    for (int r = 0; r < topo->router_count(); ++r) {
      const auto& p = fp.router_position(r);
      EXPECT_GE(p.x, 0.0) << topo->name();
      EXPECT_LE(p.x, fp.die_edge_mm()) << topo->name();
      EXPECT_GE(p.y, 0.0) << topo->name();
      EXPECT_LE(p.y, fp.die_edge_mm()) << topo->name();
    }
    EXPECT_GT(fp.total_wire_mm(), 0.0) << topo->name();
  }
}

TEST(Floorplan, DeterministicAcrossRebuilds) {
  const auto a = make_fat_tree(16);
  const auto b = make_fat_tree(16);
  const Floorplan fa(*a, kDie);
  const Floorplan fb(*b, kDie);
  ASSERT_EQ(a->links().size(), b->links().size());
  for (std::size_t li = 0; li < a->links().size(); ++li) {
    EXPECT_EQ(fa.link_length_mm(li), fb.link_length_mm(li));
  }
}

TEST(Floorplan, RejectsNonPositiveDie) {
  const auto topo = make_mesh(4);
  EXPECT_THROW(Floorplan(*topo, 0.0), std::invalid_argument);
  EXPECT_THROW(Floorplan(*topo, -1.0), std::invalid_argument);
}

// ------------------------------------------------------- LinkTimingModel ---

TEST(LinkTiming, ZeroLengthCostsNothing) {
  const LinkTimingModel m(tech::node_90nm());
  const LinkTiming t = m.evaluate(0.0);
  EXPECT_EQ(t.extra_cycles, 0u);
  EXPECT_EQ(t.delay_ps, 0.0);
  EXPECT_GT(t.energy_pj_per_mm, 0.0);
}

TEST(LinkTiming, ExtraCyclesMonotonicInLength) {
  const LinkTimingModel m(*tech::find_node("50nm"));
  std::uint32_t prev = 0;
  bool grew = false;
  for (double mm = 1.0; mm <= 40.0; mm += 1.0) {
    const std::uint32_t e = m.evaluate(mm).extra_cycles;
    EXPECT_GE(e, prev);
    grew = grew || e > prev;
    prev = e;
  }
  EXPECT_TRUE(grew);  // a 40 mm wire at 50 nm is well past one cycle
}

TEST(LinkTiming, GuardbandStretchesThePeriod) {
  const auto node = *tech::find_node("65nm");
  const LinkTimingModel guarded(node);
  LinkTimingModel::Config raw;
  raw.apply_guardband = false;
  const LinkTimingModel nominal(node, raw);
  EXPECT_GT(guarded.period_ps(), nominal.period_ps());
  EXPECT_EQ(guarded.nominal_period_ps(), nominal.period_ps());
}

TEST(LinkTiming, RejectsBadConfig) {
  LinkTimingModel::Config bad;
  bad.fo4_per_cycle = 0.0;
  EXPECT_THROW(LinkTimingModel(tech::node_90nm(), bad), std::invalid_argument);
  bad = {};
  bad.critical_paths = 0;
  EXPECT_THROW(LinkTimingModel(tech::node_90nm(), bad), std::invalid_argument);
  bad = {};
  bad.yield_target = 1.0;
  EXPECT_THROW(LinkTimingModel(tech::node_90nm(), bad), std::invalid_argument);
}

TEST(LinkTiming, ModelsAreContainerStorable) {
  // The satellite fix behind the per-node sweep: tech models hold their
  // node by (non-const) value, so they assign and live in vectors.
  std::vector<LinkTimingModel> models;
  for (const auto& node : shrinking_roadmap()) {
    models.push_back(LinkTimingModel(node));
  }
  models[0] = models[1];  // assignable
  EXPECT_EQ(models[0].node().name, models[1].node().name);
}

// ---------------------------------------------------- physical annotation ---

std::uint32_t extra_sum(const Topology& topo) {
  std::uint32_t s = 0;
  for (const auto& l : topo.links()) s += l.extra_latency;
  return s;
}

TEST(PhysicalAnnotation, FactoriesStayAbstractWithoutSpec) {
  const auto topo = make_crossbar(16);
  for (const auto& l : topo->links()) {
    EXPECT_EQ(l.extra_latency, 0u);
    EXPECT_EQ(l.length_mm, 0.0);
    EXPECT_EQ(l.energy_pj_per_mm, 0.0);
  }
}

TEST(PhysicalAnnotation, SpecFoldsLengthsAndEnergyIntoLinks) {
  const PhysicalSpec phys{LinkTimingModel(*tech::find_node("65nm")), 225.0};
  const auto topo = make_crossbar(16, &phys);
  bool some_extra = false;
  for (const auto& l : topo->links()) {
    EXPECT_GT(l.length_mm, 0.0);
    EXPECT_GT(l.energy_pj_per_mm, 0.0);
    some_extra = some_extra || l.extra_latency > 0;
  }
  // Half-die star wires at 65 nm exceed one guardbanded clock.
  EXPECT_TRUE(some_extra);
}

TEST(PhysicalAnnotation, AnnotationLeavesRoutingUntouched) {
  const PhysicalSpec phys{LinkTimingModel(*tech::find_node("32nm")), 225.0};
  const auto plain = make_mesh(12);
  const auto placed = make_mesh(12, &phys);
  for (int a = 0; a < 12; ++a) {
    for (int b = 0; b < 12; ++b) {
      EXPECT_EQ(plain->hops_between(static_cast<TerminalId>(a),
                                    static_cast<TerminalId>(b)),
                placed->hops_between(static_cast<TerminalId>(a),
                                     static_cast<TerminalId>(b)));
    }
  }
}

TEST(PhysicalAnnotation, ExtraLatencyGrowsAsNodeShrinksAtFixedDie) {
  // The nanometer wall, per topology: at a fixed 225 mm^2 die the same
  // wires cost strictly more clock cycles at the end of the roadmap than
  // at 130 nm, never fewer from one generation to the next.
  for (const TopologyKind k : {TopologyKind::kBus, TopologyKind::kMesh2D,
                               TopologyKind::kRing, TopologyKind::kCrossbar}) {
    std::uint32_t prev = 0;
    bool first = true;
    std::uint32_t at_130 = 0, at_32 = 0;
    for (const auto& node : shrinking_roadmap()) {
      const PhysicalSpec phys{LinkTimingModel(node), 225.0};
      const auto topo = make_topology(k, 16, &phys);
      const std::uint32_t s = extra_sum(*topo);
      if (first) {
        at_130 = s;
        first = false;
      } else {
        EXPECT_GE(s, prev) << to_string(k) << " at " << node.name;
      }
      at_32 = s;
      prev = s;
    }
    EXPECT_GT(at_32, at_130) << to_string(k);
  }
}

TEST(PhysicalAnnotation, BusMediumSpansTheDie) {
  // The bus's entry/exit hubs both relax to the die center, but the shared
  // medium is a multi-drop wire that must reach every tap: its floorplanned
  // length is floored at one die edge, so the bus pays real deep-submicron
  // wire cost instead of a 0 mm hub-to-hub stub.
  const auto topo = make_bus(16);
  const Floorplan fp(*topo, kDie);
  bool found_medium = false;
  for (std::size_t li = 0; li < topo->links().size(); ++li) {
    if (!topo->links()[li].spans_die) continue;
    found_medium = true;
    EXPECT_GE(fp.link_length_mm(li), fp.die_edge_mm());
  }
  EXPECT_TRUE(found_medium);
  // And the annotated medium carries extra cycles at deep-submicron nodes.
  const PhysicalSpec phys{LinkTimingModel(*tech::find_node("65nm")), 225.0};
  const auto placed = make_bus(16, 1.0, &phys);
  for (const auto& l : placed->links()) {
    if (l.spans_die) {
      EXPECT_GT(l.extra_latency, 0u);
    }
  }
}

TEST(PhysicalAnnotation, MeshKeepsShorterWiresThanCrossbarAt65nm) {
  const PhysicalSpec phys{LinkTimingModel(*tech::find_node("65nm")), 225.0};
  const auto mesh = make_mesh(16, &phys);
  const auto xbar = make_crossbar(16, &phys);
  EXPECT_EQ(extra_sum(*mesh), 0u);   // one-pitch wires fit in a cycle
  EXPECT_GT(extra_sum(*xbar), 0u);   // star wires do not
}

}  // namespace
}  // namespace soc::noc
