// Tests of the technology-scaling layer: roadmap integrity, wire-delay
// model (claim C4: 6-10 cycles cross-chip at 50 nm), clock and energy
// models.
#include <gtest/gtest.h>

#include <cmath>

#include "soc/tech/clock_model.hpp"
#include "soc/tech/energy_model.hpp"
#include "soc/tech/process_node.hpp"
#include "soc/tech/variation.hpp"
#include "soc/tech/wire_model.hpp"

namespace soc::tech {
namespace {

TEST(Roadmap, HasSevenGenerations) {
  EXPECT_EQ(roadmap().size(), 7u);
}

TEST(Roadmap, MonotoneScaling) {
  const auto nodes = roadmap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].feature_nm, nodes[i - 1].feature_nm);
    EXPECT_GT(nodes[i].year, nodes[i - 1].year);
    EXPECT_LE(nodes[i].vdd_v, nodes[i - 1].vdd_v);
    EXPECT_LT(nodes[i].fo4_ps, nodes[i - 1].fo4_ps);          // gates faster
    EXPECT_GT(nodes[i].wire_r_ohm_per_mm, nodes[i - 1].wire_r_ohm_per_mm);
    EXPECT_GT(nodes[i].density_mtx_mm2, nodes[i - 1].density_mtx_mm2);
    EXPECT_GT(nodes[i].mask_set_cost_usd, nodes[i - 1].mask_set_cost_usd);
    EXPECT_LT(nodes[i].sram_bit_um2, nodes[i - 1].sram_bit_um2);
    EXPECT_GT(nodes[i].leakage_rel, nodes[i - 1].leakage_rel);
  }
}

TEST(Roadmap, FindByNameAndFeature) {
  ASSERT_TRUE(find_node(std::string("90nm")).has_value());
  EXPECT_EQ(find_node(std::string("90nm"))->year, 2003);
  ASSERT_TRUE(find_node(130.0).has_value());
  EXPECT_EQ(find_node(130.0)->name, "130nm");
  EXPECT_FALSE(find_node(std::string("37nm")).has_value());
  EXPECT_FALSE(find_node(999.0).has_value());
}

TEST(Roadmap, PaperAnchors) {
  // Section 1: mask set "exceeding 1M$ for current 90nm process".
  EXPECT_GT(node_90nm().mask_set_cost_usd, 1e6);
  EXPECT_EQ(node_50nm().name, "50nm");
}

TEST(Roadmap, GenerationsBetween) {
  const auto n130 = *find_node(std::string("130nm"));
  EXPECT_EQ(generations_between(n130, node_90nm()), 1);
  EXPECT_EQ(generations_between(node_90nm(), n130), -1);
  EXPECT_EQ(generations_between(n130, n130), 0);
  ProcessNode fake = n130;
  fake.name = "bogus";
  EXPECT_THROW(generations_between(fake, n130), std::invalid_argument);
}

TEST(ClockScaling, FrequencyRisesAcrossRoadmap) {
  double prev = 0.0;
  for (const auto& n : roadmap()) {
    const double ghz = n.clock_ghz();
    EXPECT_GT(ghz, prev);
    prev = ghz;
  }
  // 90 nm aggressive clock should land in the low-GHz range.
  EXPECT_GT(node_90nm().clock_ghz(), 1.5);
  EXPECT_LT(node_90nm().clock_ghz(), 4.0);
}

// ------------------------------------------------------------ WireModel ---

TEST(WireModel, UnrepeatedDelayIsQuadratic) {
  const WireModel w(node_90nm());
  const double d1 = w.unrepeated_delay_ps(1.0);
  const double d2 = w.unrepeated_delay_ps(2.0);
  const double d4 = w.unrepeated_delay_ps(4.0);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-9);
  EXPECT_NEAR(d4 / d1, 16.0, 1e-9);
}

TEST(WireModel, RepeatedDelayIsLinear) {
  const WireModel w(node_90nm());
  const auto r5 = w.repeated(5.0);
  const auto r10 = w.repeated(10.0);
  EXPECT_NEAR(r10.delay_ps / r5.delay_ps, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(r5.delay_per_mm_ps, r10.delay_per_mm_ps);
}

TEST(WireModel, RepeatersBeatUnrepeatedForLongWires) {
  for (const auto& n : roadmap()) {
    const WireModel w(n);
    EXPECT_LT(w.repeated(10.0).delay_ps, w.unrepeated_delay_ps(10.0))
        << n.name;
  }
}

TEST(WireModel, RepeaterCountGrowsWithLength) {
  const WireModel w(node_50nm());
  EXPECT_GE(w.repeated(10.0).repeater_count, w.repeated(2.0).repeater_count);
  EXPECT_GT(w.repeated(20.0).repeater_count, 0);
}

TEST(WireModel, PerMmDelayWorsensWithScaling) {
  // The nanometer wall: even optimally repeated wires get slower per mm
  // as r*c grows faster than gates speed up.
  double prev = 0.0;
  for (const auto& n : roadmap()) {
    const double per_mm = WireModel(n).repeated(1.0).delay_per_mm_ps;
    EXPECT_GT(per_mm, prev * 0.9) << n.name;  // non-decreasing (10% slack)
    prev = per_mm;
  }
}

TEST(WireModel, CriticalLengthShrinksWithScaling) {
  // The reachable-in-one-cycle radius collapses across generations.
  const double at250 = WireModel(*find_node(250.0)).critical_length_mm();
  const double at90 = WireModel(node_90nm()).critical_length_mm();
  const double at50 = WireModel(node_50nm()).critical_length_mm();
  EXPECT_GT(at250, at90);
  EXPECT_GT(at90, at50);
  EXPECT_LT(at50, 5.0);  // well below a 15 mm die edge
}

TEST(WireModel, ClaimC4CrossChipCyclesAt50nm) {
  // Paper Section 6.1: "In 50 nm technologies, it is predicted that the
  // intra-chip propagation delay will be between six and ten clock cycles".
  const double cycles = WireModel(node_50nm()).cross_chip_cycles();
  EXPECT_GE(cycles, 6.0);
  EXPECT_LE(cycles, 10.0);
}

TEST(WireModel, CrossChipSubCycleAt250nm) {
  // At 250 nm the same route fits within ~1 cycle — communication used to
  // be free; that is what changed.
  const double cycles = WireModel(*find_node(250.0)).cross_chip_cycles();
  EXPECT_LT(cycles, 1.5);
}

TEST(WireModel, CrossChipMonotoneAcrossRoadmap) {
  double prev = 0.0;
  for (const auto& n : roadmap()) {
    const double c = WireModel(n).cross_chip_cycles();
    EXPECT_GT(c, prev) << n.name;
    prev = c;
  }
}

TEST(WireModel, WireEnergyPositiveAndScalesDown) {
  const auto e250 = WireModel(*find_node(250.0)).repeated(1.0).energy_pj_per_mm;
  const auto e50 = WireModel(node_50nm()).repeated(1.0).energy_pj_per_mm;
  EXPECT_GT(e250, 0.0);
  EXPECT_LT(e50, e250);  // lower Vdd dominates
}

// ----------------------------------------------------------- ClockModel ---

TEST(ClockModel, DesignStyleOrdering) {
  const ClockModel ck(node_90nm());
  EXPECT_GT(ck.custom_ghz(), ck.asic_ghz());
  EXPECT_GT(ck.asic_ghz(), ck.efpga_ghz());
  EXPECT_NEAR(ck.custom_ghz() / ck.efpga_ghz(), 5.0, 0.1);  // 60/12
}

// ---------------------------------------------------------- EnergyModel ---

TEST(EnergyModel, FabricSpectrumOrdering) {
  // Figure 1: energy per op falls monotonically from GP CPU to hardwired.
  const EnergyModel em(node_90nm());
  const double cpu = em.op_energy_pj(Fabric::kGeneralPurposeCpu);
  const double dsp = em.op_energy_pj(Fabric::kDsp);
  const double asip = em.op_energy_pj(Fabric::kAsip);
  const double efpga = em.op_energy_pj(Fabric::kEfpga);
  const double hw = em.op_energy_pj(Fabric::kHardwired);
  EXPECT_GT(cpu, dsp);
  EXPECT_GT(dsp, asip);
  EXPECT_GE(asip, efpga);
  EXPECT_GT(efpga, hw);
}

TEST(EnergyModel, ClaimC7EfpgaTenXPenalty) {
  // Section 6.3: "The 10X cost and power penalty of eFPGAs".
  const auto& p = fabric_profile(Fabric::kEfpga);
  EXPECT_DOUBLE_EQ(p.energy_per_op_rel, 10.0);
  EXPECT_DOUBLE_EQ(p.area_per_op_rel, 10.0);
}

TEST(EnergyModel, FlexibilityOrdering) {
  // Development effort rises toward hardwired; respin flexibility falls.
  double prev_effort = 0.0;
  for (const Fabric f : {Fabric::kGeneralPurposeCpu, Fabric::kDsp,
                         Fabric::kAsip, Fabric::kEfpga, Fabric::kHardwired}) {
    const auto& p = fabric_profile(f);
    EXPECT_GT(p.dev_effort_rel, prev_effort);
    prev_effort = p.dev_effort_rel;
  }
  EXPECT_DOUBLE_EQ(fabric_profile(Fabric::kHardwired).respin_flexibility, 0.0);
  EXPECT_DOUBLE_EQ(
      fabric_profile(Fabric::kGeneralPurposeCpu).respin_flexibility, 1.0);
}

TEST(EnergyModel, OpEnergyScalesDownWithNode) {
  const EnergyModel old_node(*find_node(250.0));
  const EnergyModel new_node(node_50nm());
  EXPECT_GT(old_node.hardwired_op_pj(), new_node.hardwired_op_pj());
}

TEST(EnergyModel, LeakageExplodesBelow90nm) {
  // Section 4: leakage control becomes a first-class problem.
  const double at130 = EnergyModel(*find_node(130.0)).leakage_mw_per_mm2();
  const double at50 = EnergyModel(node_50nm()).leakage_mw_per_mm2();
  EXPECT_GT(at50 / at130, 10.0);
}

// -------------------------------------------------- on-chip variation (OCV) ---

TEST(Variation, NormalCdfSanity) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.6448536), 0.95, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.6448536), 0.05, 1e-6);
}

TEST(Variation, SigmaGrowsAcrossRoadmap) {
  double prev = 0.0;
  for (const auto& n : roadmap()) {
    const auto v = variation_for(n);
    EXPECT_GT(v.sigma_fraction, prev) << n.name;
    prev = v.sigma_fraction;
  }
  EXPECT_NEAR(variation_for(*find_node(250.0)).sigma_fraction, 0.04, 1e-12);
  EXPECT_GT(variation_for(*find_node(std::string("32nm"))).sigma_fraction, 0.10);
}

TEST(Variation, TimingYieldBehaviour) {
  const VariationParams v{0.05};
  // At the nominal period, each path has 50% yield; N paths compound.
  EXPECT_NEAR(timing_yield(100.0, 100.0, v, 1), 0.5, 1e-9);
  EXPECT_NEAR(timing_yield(100.0, 100.0, v, 10), std::pow(0.5, 10), 1e-9);
  // Generous slack -> yield -> 1; tight -> 0.
  EXPECT_GT(timing_yield(100.0, 130.0, v, 1000), 0.99);
  EXPECT_LT(timing_yield(100.0, 90.0, v, 1), 0.05);
  EXPECT_THROW(timing_yield(0.0, 1.0, v, 1), std::invalid_argument);
  EXPECT_THROW(timing_yield(1.0, 1.0, v, 0), std::invalid_argument);
}

TEST(Variation, PeriodForYieldInvertsTimingYield) {
  const VariationParams v{0.08};
  for (const int n_paths : {1, 100, 10'000}) {
    const double period = period_for_yield(100.0, v, n_paths, 0.99);
    EXPECT_NEAR(timing_yield(100.0, period, v, n_paths), 0.99, 1e-3);
    EXPECT_GT(period, 100.0);
  }
  EXPECT_THROW(period_for_yield(100.0, v, 1, 1.5), std::invalid_argument);
}

TEST(Variation, GuardbandGrowsWithPathsAndScaling) {
  // More critical paths -> larger statistical max -> more guardband.
  const auto& n90 = node_90nm();
  EXPECT_GT(guardband_fraction(n90, 10'000), guardband_fraction(n90, 100));
  // Newer nodes pay more for the same yield: the statistical-design tax.
  EXPECT_GT(guardband_fraction(node_50nm(), 1000),
            guardband_fraction(*find_node(250.0), 1000));
  // Magnitudes for 1k paths: ~17% at 250nm vs >40% at 50nm — the growing
  // statistical-design tax.
  EXPECT_LT(guardband_fraction(*find_node(250.0), 1000), 0.20);
  EXPECT_GT(guardband_fraction(node_50nm(), 1000), 0.40);
}

}  // namespace
}  // namespace soc::tech
