// Event-driven network behavior: delivery, latency composition, ordering,
// contention serialization, backpressure and statistics hygiene.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "soc/noc/network.hpp"
#include "soc/noc/topologies.hpp"
#include "soc/sim/rng.hpp"

namespace soc::noc {
namespace {

struct Harness {
  explicit Harness(std::unique_ptr<Topology> topo, NetworkConfig cfg = {})
      : net(std::move(topo), cfg, queue) {
    net.set_deliver([this](const Packet& p) { delivered.push_back(p); });
  }
  sim::EventQueue queue;
  Network net;
  std::vector<Packet> delivered;
};

TEST(Network, DeliversSinglePacket) {
  Harness h(make_mesh(16));
  h.net.inject(0, 15, 8, /*tag=*/42);
  h.queue.run_all();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].src, 0u);
  EXPECT_EQ(h.delivered[0].dst, 15u);
  EXPECT_EQ(h.delivered[0].tag, 42u);
  EXPECT_EQ(h.delivered[0].hops, 6u);  // 4x4 corner to corner
  EXPECT_EQ(h.net.in_flight(), 0u);
}

TEST(Network, ZeroLoadLatencyComposition) {
  // One 8-flit packet, 1 hop on a ring of 4 (0 -> 1).
  NetworkConfig cfg;
  cfg.router_pipeline_cycles = 3;
  cfg.link_latency_cycles = 1;
  cfg.ni_latency_cycles = 2;
  Harness h(make_ring(4), cfg);
  h.net.inject(0, 1, 8);
  h.queue.run_all();
  ASSERT_EQ(h.delivered.size(), 1u);
  // NI: 8 serialize + 2 + 3 = 13; hop: 8 + 1 + 3 = 12. Total 25.
  EXPECT_EQ(h.delivered[0].latency(), 25u);
}

TEST(Network, LatencyGrowsWithHops) {
  Harness h(make_mesh(16));
  h.net.inject(0, 1, 4);   // 1 hop
  h.net.inject(0, 15, 4);  // 6 hops (queued behind at the NI, but farther)
  h.queue.run_all();
  ASSERT_EQ(h.delivered.size(), 2u);
  const auto& near = h.delivered[0].dst == 1 ? h.delivered[0] : h.delivered[1];
  const auto& far = h.delivered[0].dst == 15 ? h.delivered[0] : h.delivered[1];
  EXPECT_LT(near.latency(), far.latency());
}

TEST(Network, SameFlowStaysInOrder) {
  Harness h(make_mesh(16));
  for (int i = 0; i < 20; ++i) h.net.inject(3, 12, 6, static_cast<std::uint64_t>(i));
  h.queue.run_all();
  ASSERT_EQ(h.delivered.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)].tag,
              static_cast<std::uint64_t>(i));
  }
}

TEST(Network, BusSerializesEverything) {
  // N simultaneous single-hop transfers on a bus must take ~N * serialize
  // time on the shared link; on a crossbar they proceed in parallel.
  constexpr int kN = 8;
  constexpr std::uint32_t kFlits = 16;

  Harness bus(make_bus(kN));
  for (int i = 0; i < kN; ++i) {
    bus.net.inject(static_cast<TerminalId>(i),
                   static_cast<TerminalId>((i + 1) % kN), kFlits);
  }
  bus.queue.run_all();
  const auto bus_done = bus.queue.now();

  Harness xbar(make_crossbar(kN));
  for (int i = 0; i < kN; ++i) {
    xbar.net.inject(static_cast<TerminalId>(i),
                    static_cast<TerminalId>((i + 1) % kN), kFlits);
  }
  xbar.queue.run_all();
  const auto xbar_done = xbar.queue.now();

  EXPECT_GT(bus_done, xbar_done + (kN - 2) * kFlits);
}

TEST(Network, HotspotContendsAtDestination) {
  // All terminals send to terminal 0 on a crossbar: the output port is
  // the serialization point.
  constexpr int kN = 8;
  constexpr std::uint32_t kFlits = 10;
  Harness h(make_crossbar(kN));
  for (int i = 1; i < kN; ++i) {
    h.net.inject(static_cast<TerminalId>(i), 0, kFlits);
  }
  h.queue.run_all();
  // Last delivery cannot beat (kN-1) serializations of the output port.
  EXPECT_GE(h.queue.now(), static_cast<sim::Cycle>((kN - 1) * kFlits));
  EXPECT_EQ(h.delivered.size(), static_cast<std::size_t>(kN - 1));
}

TEST(Network, FatTreeOutrunsBinaryTreeUnderBisectionTraffic) {
  constexpr int kN = 16;
  constexpr std::uint32_t kFlits = 8;
  const auto run = [&](std::unique_ptr<Topology> topo) {
    Harness h(std::move(topo));
    // Bit-complement: everything crosses the root.
    for (int i = 0; i < kN; ++i) {
      h.net.inject(static_cast<TerminalId>(i),
                   static_cast<TerminalId>(kN - 1 - i), kFlits);
    }
    h.queue.run_all();
    return h.queue.now();
  };
  EXPECT_LT(run(make_fat_tree(kN)), run(make_binary_tree(kN)));
}

TEST(Network, ExtraLinkLatencyConfigRespected) {
  NetworkConfig slow;
  slow.link_latency_cycles = 50;  // long global wires between routers
  NetworkConfig fast;
  fast.link_latency_cycles = 1;

  Harness hs(make_mesh(16), slow);
  Harness hf(make_mesh(16), fast);
  hs.net.inject(0, 15, 4);
  hf.net.inject(0, 15, 4);
  hs.queue.run_all();
  hf.queue.run_all();
  // 6 hops x 49 extra cycles.
  EXPECT_EQ(hs.delivered[0].latency() - hf.delivered[0].latency(), 6u * 49u);
}

TEST(Network, StatsCountersConsistent) {
  Harness h(make_torus(16));
  for (int i = 0; i < 50; ++i) {
    h.net.inject(static_cast<TerminalId>(i % 16),
                 static_cast<TerminalId>((i * 7 + 3) % 16), 5);
  }
  h.queue.run_all();
  EXPECT_EQ(h.net.injected(), 50u);
  EXPECT_EQ(h.net.delivered(), 50u);
  EXPECT_EQ(h.net.flits_delivered(), 250u);
  EXPECT_EQ(h.net.latency_samples().size(), 50u);
  EXPECT_GT(h.net.max_queue_depth(), 0u);
  EXPECT_GT(h.net.peak_link_utilization(h.queue.now()), 0.0);
}

TEST(Network, ResetStatsPreservesInFlight) {
  Harness h(make_mesh(16));
  h.net.inject(0, 15, 8);
  h.queue.run_until(5);  // packet still inside
  EXPECT_EQ(h.net.in_flight(), 1u);
  h.net.reset_stats();
  EXPECT_EQ(h.net.in_flight(), 1u);
  EXPECT_EQ(h.net.injected(), 0u);
  h.queue.run_all();
  EXPECT_EQ(h.net.in_flight(), 0u);
  EXPECT_EQ(h.net.delivered(), 1u);  // counted in the post-reset window
}

TEST(Network, RejectsBadInjections) {
  Harness h(make_mesh(4));
  EXPECT_THROW(h.net.inject(0, 99, 1), std::out_of_range);
  EXPECT_THROW(h.net.inject(99, 0, 1), std::out_of_range);
  EXPECT_THROW(h.net.inject(0, 1, 0), std::invalid_argument);
}

TEST(Network, SelfTrafficIsLocal) {
  Harness h(make_mesh(16));
  h.net.inject(5, 5, 4);
  h.queue.run_all();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].hops, 0u);  // never leaves the NI/router
}

// Property sweep: packet conservation and latency sanity across every
// topology, traffic shape and buffer regime.
class NetworkConservation
    : public ::testing::TestWithParam<std::tuple<TopologyKind, std::size_t>> {};

TEST_P(NetworkConservation, EveryInjectedPacketArrivesIntactOnce) {
  const auto [kind, capacity] = GetParam();
  NetworkConfig cfg;
  cfg.queue_capacity_pkts = capacity;
  Harness h(make_topology(kind, 16), cfg);
  sim::Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(capacity));
  std::uint64_t injected_flits = 0;
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<TerminalId>(rng.next_below(16));
    auto dst = static_cast<TerminalId>(rng.next_below(16));
    const auto flits = static_cast<std::uint32_t>(1 + rng.next_below(16));
    injected_flits += flits;
    h.net.inject(src, dst, flits, static_cast<std::uint64_t>(i));
    if (i % 7 == 0) h.queue.run_until(h.queue.now() + rng.next_below(50));
  }
  h.queue.run_all();
  ASSERT_EQ(h.delivered.size(), 300u) << to_string(kind);
  EXPECT_EQ(h.net.flits_delivered(), injected_flits);
  EXPECT_EQ(h.net.in_flight(), 0u);
  std::vector<bool> seen(300, false);
  for (const auto& p : h.delivered) {
    EXPECT_FALSE(seen.at(p.tag)) << "duplicate delivery";
    seen.at(p.tag) = true;
    EXPECT_GE(p.delivered_at, p.injected_at);
    EXPECT_GT(p.latency(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndBuffers, NetworkConservation,
    ::testing::Combine(
        ::testing::Values(TopologyKind::kBus, TopologyKind::kRing,
                          TopologyKind::kBinaryTree, TopologyKind::kFatTree,
                          TopologyKind::kMesh2D, TopologyKind::kTorus2D,
                          TopologyKind::kCrossbar),
        ::testing::Values(std::size_t{0}, std::size_t{4})),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + (std::get<1>(info.param) == 0 ? "_open" : "_credit");
    });

TEST(Network, FiniteBuffersApplyBackpressure) {
  // With tiny buffers on a mesh under a burst, peak queue depth must be
  // bounded by the configured capacity (the open-loop run is not).
  NetworkConfig tight;
  tight.queue_capacity_pkts = 2;
  Harness h(make_mesh(16), tight);
  for (int i = 0; i < 40; ++i) h.net.inject(0, 15, 8);
  h.queue.run_all();
  EXPECT_EQ(h.delivered.size(), 40u);
  EXPECT_LE(h.net.max_queue_depth(), 2u + 40u);  // NI queue is at source
  // All internal (topology) link queues were capped; the max tracked
  // includes the source NI which legitimately holds the backlog.
}

TEST(Network, RecordLatencyOffStillCountsEverything) {
  // Long-run mode: no per-packet latency samples accumulate (bounded
  // memory), but every counter the validator reads stays exact.
  NetworkConfig lean;
  lean.record_latency = false;
  Harness h(make_mesh(16), lean);
  for (int i = 0; i < 200; ++i) {
    h.net.inject(static_cast<TerminalId>(i % 16),
                 static_cast<TerminalId>((i * 5 + 2) % 16), 4,
                 static_cast<std::uint64_t>(i));
  }
  h.queue.run_all();
  EXPECT_EQ(h.net.delivered(), 200u);
  EXPECT_EQ(h.net.flits_delivered(), 800u);
  EXPECT_TRUE(h.net.latency_samples().empty());
  EXPECT_EQ(h.net.hop_stats().count(), 200u);
  // Per-packet timestamps still flow to the deliver callback.
  for (const auto& p : h.delivered) EXPECT_GT(p.latency(), 0u);
}

TEST(Network, RecordLatencyOffUnderBackpressureLongRun) {
  // The exact combination the validator's long runs exercise: finite
  // buffers (credit backpressure) plus disabled latency recording, over
  // many packets. Nothing may be lost, duplicated, or recorded.
  NetworkConfig cfg;
  cfg.record_latency = false;
  cfg.queue_capacity_pkts = 2;
  Harness h(make_mesh(16), cfg);
  sim::Rng rng(99);
  for (int i = 0; i < 600; ++i) {
    h.net.inject(static_cast<TerminalId>(rng.next_below(16)),
                 static_cast<TerminalId>(rng.next_below(16)),
                 static_cast<std::uint32_t>(1 + rng.next_below(8)),
                 static_cast<std::uint64_t>(i));
    if (i % 5 == 0) h.queue.run_until(h.queue.now() + 20);
  }
  h.queue.run_all();
  EXPECT_EQ(h.delivered.size(), 600u);
  EXPECT_EQ(h.net.in_flight(), 0u);
  EXPECT_TRUE(h.net.latency_samples().empty());
}

TEST(Network, PerLinkStatsExposeContention) {
  Harness h(make_bus(4));
  for (int i = 0; i < 10; ++i) h.net.inject(0, 1, 8);
  h.queue.run_all();
  // Link space: topology links first, then one NI link per terminal.
  EXPECT_EQ(h.net.link_count(),
            h.net.topology().links().size() +
                static_cast<std::size_t>(h.net.topology().terminal_count()));
  double max_util = 0.0;
  std::uint64_t total_busy = 0;
  for (std::size_t li = 0; li < h.net.link_count(); ++li) {
    max_util = std::max(max_util, h.net.link_utilization(li, h.queue.now()));
    total_busy += h.net.link_busy_cycles(li);
  }
  EXPECT_GT(total_busy, 0u);
  EXPECT_DOUBLE_EQ(max_util, h.net.peak_link_utilization(h.queue.now()));
  EXPECT_THROW(h.net.link_busy_cycles(h.net.link_count()), std::out_of_range);
  EXPECT_EQ(h.net.link_utilization(0, 0), 0.0);
}

TEST(Network, BackpressureDoesNotLoseOrReorderFlow) {
  NetworkConfig tight;
  tight.queue_capacity_pkts = 1;
  Harness h(make_binary_tree(8), tight);
  for (int i = 0; i < 25; ++i) {
    h.net.inject(0, 7, 6, static_cast<std::uint64_t>(i));
  }
  h.queue.run_all();
  ASSERT_EQ(h.delivered.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)].tag,
              static_cast<std::uint64_t>(i));
  }
}

}  // namespace
}  // namespace soc::noc
