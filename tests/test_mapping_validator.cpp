// Simulation-in-the-loop mapping validation: NoC traffic replay of mapped
// task graphs, analytic-vs-simulated reporting, and the two-stage DSE flow
// (validate_pareto) determinism contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dse_session_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/mapping_validator.hpp"
#include "soc/core/objective_space.hpp"

namespace soc::core {
namespace {

TaskGraph chain(int stages, double work_ops, double words) {
  TaskGraph g("chain" + std::to_string(stages));
  std::vector<int> ids;
  for (int i = 0; i < stages; ++i) {
    TaskNode t;
    t.name = "s" + std::to_string(i);
    t.work_ops = work_ops;
    ids.push_back(g.add_node(std::move(t)));
  }
  for (int i = 0; i + 1 < stages; ++i) {
    g.add_edge({ids[static_cast<std::size_t>(i)],
                ids[static_cast<std::size_t>(i + 1)], words});
  }
  return g;
}

PlatformDesc gp_platform(int pes, noc::TopologyKind topo) {
  return PlatformDesc(
      std::vector<PeDesc>(static_cast<std::size_t>(pes),
                          PeDesc{tech::Fabric::kGeneralPurposeCpu, 4, {}, 0.0}),
      topo, tech::node_90nm());
}

TEST(MappingValidator, RejectsBadInputs) {
  const auto g = chain(3, 200, 8);
  const auto p = gp_platform(4, noc::TopologyKind::kMesh2D);
  EXPECT_THROW(MappingValidator(g, p, Mapping{0, 1}, {}),
               std::invalid_argument);
  ValidatorConfig bad;
  bad.load_factor = 0.0;
  EXPECT_THROW(MappingValidator(g, p, Mapping{0, 1, 2}, bad),
               std::invalid_argument);
  bad = {};
  bad.load_factor = 1.5;
  EXPECT_THROW(MappingValidator(g, p, Mapping{0, 1, 2}, bad),
               std::invalid_argument);
  bad = {};
  bad.words_per_flit = 0.0;
  EXPECT_THROW(MappingValidator(g, p, Mapping{0, 1, 2}, bad),
               std::invalid_argument);
  bad = {};
  bad.measure_cycles = 0;
  EXPECT_THROW(MappingValidator(g, p, Mapping{0, 1, 2}, bad),
               std::invalid_argument);
  bad = {};
  bad.max_outstanding_rounds = 0;
  EXPECT_THROW(MappingValidator(g, p, Mapping{0, 1, 2}, bad),
               std::invalid_argument);
  bad = {};
  bad.top_hotspots = 0;
  EXPECT_THROW(MappingValidator(g, p, Mapping{0, 1, 2}, bad),
               std::invalid_argument);
}

TEST(MappingValidator, LocalOnlyMappingSkipsTheNetwork) {
  const auto g = chain(3, 300, 16);
  const auto p = gp_platform(4, noc::TopologyKind::kMesh2D);
  const auto r = validate_mapping_on_network(g, p, Mapping{0, 0, 0});
  EXPECT_FALSE(r.network_active);
  EXPECT_FALSE(r.network_saturated);
  EXPECT_EQ(r.rounds_completed, 0u);
  EXPECT_TRUE(r.hotspots.empty());
  // Every edge reported local; the platform sustains the offered load.
  for (const auto& e : r.edges) EXPECT_TRUE(e.local);
  EXPECT_DOUBLE_EQ(r.simulated_items_per_kcycle, r.offered_items_per_kcycle);
  EXPECT_GT(r.sim_to_analytic_ratio, 0.85);
}

TEST(MappingValidator, MeasuresEdgeTrafficOnTheNoc) {
  const auto g = chain(3, 400, 8);
  const auto p = gp_platform(4, noc::TopologyKind::kMesh2D);
  const Mapping m{0, 1, 2};
  const auto r = validate_mapping_on_network(g, p, m);

  EXPECT_TRUE(r.network_active);
  EXPECT_GT(r.rounds_completed, 0u);
  EXPECT_GT(r.analytic_items_per_kcycle, 0.0);
  EXPECT_GT(r.simulated_items_per_kcycle, 0.0);
  EXPECT_LE(r.simulated_items_per_kcycle, r.offered_items_per_kcycle * 1.05);
  EXPECT_FALSE(r.network_saturated);  // light traffic on a mesh keeps up

  ASSERT_EQ(r.edges.size(), 2u);
  for (const auto& e : r.edges) {
    EXPECT_FALSE(e.local);
    EXPECT_EQ(e.hops, p.hops(e.src_pe, e.dst_pe));
    EXPECT_EQ(e.flits, 2u);  // 8 words at 4 words/flit
    EXPECT_GT(e.packets_delivered, 0u);
    // At minimum: serialization + NI + one hop of pipeline latency.
    EXPECT_GT(e.avg_latency_cycles, static_cast<double>(e.flits));
    EXPECT_GE(e.max_latency_cycles, e.avg_latency_cycles);
  }

  ASSERT_FALSE(r.hotspots.empty());
  EXPECT_DOUBLE_EQ(r.hotspots[0].utilization, r.peak_link_utilization);
  for (std::size_t i = 1; i < r.hotspots.size(); ++i) {
    EXPECT_LE(r.hotspots[i].utilization, r.hotspots[i - 1].utilization);
  }
  EXPECT_GT(r.avg_packet_latency, 0.0);
}

TEST(MappingValidator, RepeatedRunsAreBitIdentical) {
  const auto g = apps::ipv4_task_graph();
  const auto p = gp_platform(8, noc::TopologyKind::kFatTree);
  Mapping m(static_cast<std::size_t>(g.node_count()));
  for (int i = 0; i < g.node_count(); ++i) {
    m[static_cast<std::size_t>(i)] = i % p.pe_count();
  }
  MappingValidator v(g, p, m);
  const auto a = v.run();
  const auto b = v.run();  // exercises the reused, reset event queue
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  EXPECT_EQ(a.simulated_items_per_kcycle, b.simulated_items_per_kcycle);
  EXPECT_EQ(a.sim_to_analytic_ratio, b.sim_to_analytic_ratio);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.peak_link_utilization, b.peak_link_utilization);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].packets_delivered, b.edges[i].packets_delivered);
    EXPECT_EQ(a.edges[i].avg_latency_cycles, b.edges[i].avg_latency_cycles);
  }
  ASSERT_EQ(a.hotspots.size(), b.hotspots.size());
  for (std::size_t i = 0; i < a.hotspots.size(); ++i) {
    EXPECT_EQ(a.hotspots[i].link, b.hotspots[i].link);
    EXPECT_EQ(a.hotspots[i].utilization, b.hotspots[i].utilization);
  }
}

TEST(MappingValidator, RecordLatencyOffMatchesDefaultFigures) {
  // The validator's latency figures come from its own per-flow accumulators,
  // so disabling the network's exact sample recorder (the long-run mode)
  // must not change any reported number.
  const auto g = chain(4, 250, 12);
  const auto p = gp_platform(4, noc::TopologyKind::kRing);
  const Mapping m{0, 1, 2, 3};
  ValidatorConfig lean;
  lean.net.record_latency = false;
  const auto a = validate_mapping_on_network(g, p, m);
  const auto b = validate_mapping_on_network(g, p, m, lean);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  EXPECT_EQ(a.simulated_items_per_kcycle, b.simulated_items_per_kcycle);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_GT(b.avg_packet_latency, 0.0);
}

TEST(MappingValidator, FiniteBuffersStillCompleteRounds) {
  // Virtual-cut-through backpressure (finite queue_capacity_pkts) slows
  // traffic but must not lose it: rounds still complete end to end.
  const auto g = chain(4, 300, 16);
  const auto p = gp_platform(4, noc::TopologyKind::kMesh2D);
  ValidatorConfig tight;
  tight.net.queue_capacity_pkts = 2;
  const auto r = validate_mapping_on_network(g, p, Mapping{0, 1, 2, 3}, tight);
  EXPECT_TRUE(r.network_active);
  EXPECT_GT(r.rounds_completed, 0u);
  for (const auto& e : r.edges) EXPECT_GT(e.packets_delivered, 0u);
}

TEST(MappingValidator, DetectsSaturatedBus) {
  // Tiny compute, huge payloads, shared bus: the analytic bottleneck (pure
  // compute) offers a rate the serialized medium cannot carry. The hop
  // model cannot see this; the simulator must.
  const auto g = chain(4, 50, 2000);
  const auto p = gp_platform(4, noc::TopologyKind::kBus);
  ValidatorConfig cfg;
  cfg.load_factor = 1.0;
  const auto r = validate_mapping_on_network(g, p, Mapping{0, 1, 2, 3}, cfg);
  EXPECT_TRUE(r.network_active);
  EXPECT_TRUE(r.network_saturated);
  EXPECT_LT(r.simulated_items_per_kcycle, 0.5 * r.offered_items_per_kcycle);
  EXPECT_LT(r.sim_to_analytic_ratio, 0.5);
  EXPECT_GT(r.peak_link_utilization, 0.9);  // the bus runs flat out
}

TEST(MappingValidator, ClosedLoopMeasuresNetworkLimit) {
  const auto g = chain(3, 400, 8);
  const auto p = gp_platform(4, noc::TopologyKind::kMesh2D);
  ValidatorConfig cfg;
  cfg.mode = noc::ReplayConfig::Mode::kClosedLoop;
  const auto r = validate_mapping_on_network(g, p, Mapping{0, 1, 2}, cfg);
  EXPECT_TRUE(r.network_active);
  EXPECT_DOUBLE_EQ(r.offered_items_per_kcycle, 0.0);
  EXPECT_FALSE(r.network_saturated);
  EXPECT_GT(r.rounds_completed, 0u);
  // Unthrottled by compute, the network alone sustains at least the rate
  // the compute-paced open loop achieves.
  const auto open = validate_mapping_on_network(g, p, Mapping{0, 1, 2});
  EXPECT_GE(r.simulated_items_per_kcycle, open.simulated_items_per_kcycle);
}

// ----------------------------------------------------- two-stage DSE flow ---

TEST(Dse, ValidateParetoPopulatesFrontOnly) {
  DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  space.fabrics = {tech::Fabric::kAsip};
  AnnealConfig quick;
  quick.iterations = 500;
  DseConfig dc;
  dc.validate_pareto = true;
  const auto points = run_session(apps::mjpeg_task_graph(), space,
                              tech::node_90nm(), {}, quick, dc);
  int validated = 0;
  for (const auto& pt : points) {
    if (pt.pareto_optimal) {
      EXPECT_TRUE(pt.validated);
      EXPECT_GT(pt.sim_throughput_per_kcycle, 0.0);
      EXPECT_GT(pt.sim_to_analytic_ratio, 0.0);
      ++validated;
    } else {
      EXPECT_FALSE(pt.validated);
      EXPECT_EQ(pt.sim_throughput_per_kcycle, 0.0);
    }
  }
  EXPECT_GE(validated, 1);
}

// ------------------------------------------------- physical link latency ---

PlatformDesc physical_platform(int pes, noc::TopologyKind topo,
                               const tech::ProcessNode& node, double die_mm2) {
  return PlatformDesc(
      std::vector<PeDesc>(static_cast<std::size_t>(pes),
                          PeDesc{tech::Fabric::kGeneralPurposeCpu, 4, {}, 0.0}),
      topo, node,
      noc::PhysicalSpec{noc::LinkTimingModel(node), die_mm2});
}

TEST(MappingValidator, ReplayPicksUpNonzeroExtraLatency) {
  // A crossbar at 65 nm on a big die carries multi-cycle wires; the replay
  // must measure the longer packets flights the annotated topology imposes.
  // (Before the physical chain existed, extra_latency was always 0 and this
  // path was untestable.)
  const auto g = chain(4, 400, 16);
  const auto node = *tech::find_node("65nm");
  const auto abstract = gp_platform(4, noc::TopologyKind::kCrossbar);
  const auto physical =
      physical_platform(4, noc::TopologyKind::kCrossbar, node, 225.0);
  // The physical platform's matrices really carry wire stages.
  int extra = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) extra += physical.path_extra_cycles(a, b);
  }
  ASSERT_GT(extra, 0);
  const Mapping spread{0, 1, 2, 3};
  const auto fast = validate_mapping_on_network(g, abstract, spread);
  const auto slow = validate_mapping_on_network(g, physical, spread);
  EXPECT_TRUE(slow.network_active);
  EXPECT_GT(slow.avg_packet_latency, fast.avg_packet_latency);
  // Per-edge means shift by at least the per-path wire stages.
  for (std::size_t e = 0; e < slow.edges.size(); ++e) {
    if (slow.edges[e].local) continue;
    const int stages = physical.path_extra_cycles(slow.edges[e].src_pe,
                                                  slow.edges[e].dst_pe);
    EXPECT_GE(slow.edges[e].avg_latency_cycles,
              fast.edges[e].avg_latency_cycles + stages);
  }
}

TEST(MappingValidator, PhysicalReplayStaysDeterministic) {
  const auto g = chain(4, 300, 12);
  const auto node = *tech::find_node("50nm");
  const auto p = physical_platform(4, noc::TopologyKind::kMesh2D, node, 225.0);
  MappingValidator v(g, p, Mapping{0, 1, 2, 3});
  const auto r1 = v.run();
  const auto r2 = v.run();
  EXPECT_EQ(r1.simulated_items_per_kcycle, r2.simulated_items_per_kcycle);
  EXPECT_EQ(r1.avg_packet_latency, r2.avg_packet_latency);
  EXPECT_EQ(r1.peak_link_utilization, r2.peak_link_utilization);
}

TEST(Dse, ValidatedSweepBitIdenticalAcrossThreadCounts) {
  DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  space.fabrics = {tech::Fabric::kAsip};
  AnnealConfig quick;
  quick.iterations = 500;
  DseConfig serial;
  serial.validate_pareto = true;
  serial.num_threads = 1;
  DseConfig sharded = serial;
  sharded.num_threads = 4;
  const auto g = apps::mjpeg_task_graph();
  const auto a = run_session(g, space, tech::node_90nm(), {}, quick, serial);
  const auto b = run_session(g, space, tech::node_90nm(), {}, quick, sharded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mapping, b[i].mapping);
    EXPECT_EQ(a[i].validated, b[i].validated);
    EXPECT_EQ(a[i].sim_throughput_per_kcycle, b[i].sim_throughput_per_kcycle);
    EXPECT_EQ(a[i].sim_to_analytic_ratio, b[i].sim_to_analytic_ratio);
    EXPECT_EQ(a[i].sim_peak_link_utilization, b[i].sim_peak_link_utilization);
    EXPECT_EQ(a[i].sim_avg_packet_latency, b[i].sim_avg_packet_latency);
    EXPECT_EQ(a[i].sim_network_saturated, b[i].sim_network_saturated);
  }
}

}  // namespace
}  // namespace soc::core
