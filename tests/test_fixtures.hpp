#pragma once

// Shared graph/platform builders for the test suites. These used to be
// duplicated per-suite (test_mappers.cpp, test_constraints.cpp); the mapper
// quality suite made a third copy unattractive, so they live here. All are
// deterministic in their inputs — no hidden global state.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "soc/core/mapping.hpp"
#include "soc/core/scenario.hpp"
#include "soc/core/task_graph.hpp"
#include "soc/sim/rng.hpp"
#include "soc/tech/energy_model.hpp"

namespace soc::core {

/// Heterogeneous CPU+ASIP platform the per-strategy tests run against.
inline PlatformDesc cpu_asip_platform(int pes) {
  std::vector<PeDesc> descs;
  for (int i = 0; i < pes; ++i) {
    descs.push_back(PeDesc{
        i % 2 ? tech::Fabric::kGeneralPurposeCpu : tech::Fabric::kAsip, 4, {},
        0.0});
  }
  return PlatformDesc(std::move(descs), noc::TopologyKind::kMesh2D,
                      tech::node_90nm());
}

/// Random DAG (edges always point from lower to higher node index) with a
/// fabric-constraint mix, for the randomized property tests.
inline TaskGraph random_dag(sim::Rng& rng, int nodes, int extra_edges) {
  TaskGraph g("random-dag");
  for (int i = 0; i < nodes; ++i) {
    TaskNode t;
    t.name = "n" + std::to_string(i);
    t.work_ops = 10.0 + static_cast<double>(rng.next_below(200));
    if (rng.next_bool(0.25)) t.allowed_fabrics = {tech::Fabric::kAsip};
    g.add_node(std::move(t));
  }
  // Spine keeps the graph connected; extra edges add fan-in/fan-out.
  for (int i = 0; i + 1 < nodes; ++i) {
    g.add_edge({i, i + 1, 1.0 + static_cast<double>(rng.next_below(16))});
  }
  for (int e = 0; e < extra_edges; ++e) {
    const int src = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(nodes - 1)));
    const int dst =
        src + 1 +
        static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(nodes - src - 1)));
    g.add_edge({src, dst, 1.0 + static_cast<double>(rng.next_below(16))});
  }
  return g;
}

/// Platform whose PE pool is striped across `groups` task kinds (PE i
/// accepts only kind i % groups; groups == 0 leaves PEs unrestricted) with
/// a uniform per-PE capacity (0 = unlimited).
inline PlatformDesc striped_platform(int pes, int groups, double capacity) {
  std::vector<PeDesc> descs;
  for (int i = 0; i < pes; ++i) {
    PeDesc d{tech::Fabric::kAsip, 4, {}, 0.0};
    if (groups > 0) d.compatible_kinds = {i % groups};
    d.capacity = capacity;
    descs.push_back(std::move(d));
  }
  return PlatformDesc(std::move(descs), noc::TopologyKind::kMesh2D,
                      tech::node_90nm());
}

/// Tagged scenario graph: kinds in [0, kinds), demand in [0.5, 2.0].
inline TaskGraph tagged_graph(int index, int kinds, ScenarioShape shape) {
  const ScenarioGenerator gen(0xc0415ULL);
  ScenarioSpec spec;
  spec.shape = shape;
  spec.depth = 4;
  spec.width = 4;
  spec.kinds = kinds;
  spec.demand_min = 0.5;
  spec.demand_max = 2.0;
  return gen.generate(spec, index);
}

}  // namespace soc::core
