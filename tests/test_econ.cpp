// Tests of the economics layer: the paper's Section 1 NRE arithmetic
// (claims C1/C2), platform amortization, and the Section 6 complexity
// growth trends (claim C3).
#include <gtest/gtest.h>

#include <cmath>

#include "soc/econ/amortization.hpp"
#include "soc/econ/nre_model.hpp"
#include "soc/econ/trends.hpp"
#include "soc/econ/yield.hpp"

namespace soc::econ {
namespace {

using soc::tech::find_node;
using soc::tech::node_90nm;

// ----------------------------------------------------------------- C1 ---

TEST(NreModel, ClaimC1MaskCostTenXOverThreeGenerations) {
  // "The SoC mask set manufacturing NRE cost has been multiplied by a
  // factor of ten in about three process technology generations".
  const auto n250 = *find_node(std::string("250nm"));
  const double growth = NreModel::mask_cost_growth(n250, 3);
  EXPECT_GE(growth, 8.0);
  EXPECT_LE(growth, 12.0);
}

TEST(NreModel, ClaimC1MillionUnitsToPayMaskSet) {
  // "for a chip sold at a price of $5, and a profit margin of 20%, this
  // implies selling over one million chips simply to pay for the mask set".
  const ChipProduct paper_product{};  // defaults: $5, 20%
  EXPECT_DOUBLE_EQ(paper_product.margin_per_unit(), 1.0);
  const double units = NreModel::break_even_units(
      NreModel::mask_set_usd(node_90nm()), paper_product);
  EXPECT_GT(units, 1e6);
  EXPECT_LT(units, 3e6);
}

TEST(NreModel, MaskCostGrowthValidation) {
  const auto n250 = *find_node(std::string("250nm"));
  EXPECT_THROW(NreModel::mask_cost_growth(n250, 99), std::out_of_range);
  auto fake = n250;
  fake.name = "bogus";
  EXPECT_THROW(NreModel::mask_cost_growth(fake, 1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(NreModel::mask_cost_growth(n250, 0), 1.0);
}

// ----------------------------------------------------------------- C2 ---

TEST(NreModel, ClaimC2DesignNreRange) {
  // "design NRE, which ranges from 10M$ to 100M$ for today's complex 0.13
  // micron designs", implying 10-100 M units to break even.
  const auto n130 = *find_node(std::string("130nm"));
  const DesignNre nre = NreModel::design_nre(n130);
  EXPECT_DOUBLE_EQ(nre.low_usd, 10e6);
  EXPECT_DOUBLE_EQ(nre.high_usd, 100e6);

  const ChipProduct p{};
  EXPECT_NEAR(NreModel::break_even_units(nre.low_usd, p), 10e6, 1.0);
  EXPECT_NEAR(NreModel::break_even_units(nre.high_usd, p), 100e6, 1.0);
}

TEST(NreModel, DesignNreGrowsBelow130nm) {
  // Capacity outruns productivity: design NRE keeps rising.
  const auto n130 = *find_node(std::string("130nm"));
  const auto at90 = NreModel::design_nre(node_90nm());
  const auto at50 = NreModel::design_nre(*find_node(std::string("50nm")));
  EXPECT_GT(at90.low_usd, NreModel::design_nre(n130).low_usd);
  EXPECT_GT(at50.low_usd, at90.low_usd);
}

TEST(NreModel, HigherMarginLowersBreakEven) {
  ChipProduct cheap{5.0, 0.20};
  ChipProduct premium{50.0, 0.40};
  EXPECT_GT(NreModel::break_even_units(1e6, cheap),
            NreModel::break_even_units(1e6, premium));
}

// -------------------------------------------------------- Amortization ---

TEST(Amortization, PlatformBeatsAsicsWithEnoughVariants) {
  // Platform: $40M once + $4M per derivative. ASIC: $25M each.
  const int n = PlatformAmortization::break_even_variants(
      /*platform_nre=*/40e6, /*mask_nre=*/1.2e6,
      /*derivative_nre=*/4e6, /*asic_design_nre=*/25e6);
  EXPECT_GT(n, 1);
  EXPECT_LE(n, 3);
}

TEST(Amortization, PlatformNeverWinsWhenDerivativesCostMore) {
  const int n = PlatformAmortization::break_even_variants(
      40e6, 1.2e6, /*derivative_nre=*/30e6, /*asic_design_nre=*/25e6);
  EXPECT_EQ(n, 0);
}

TEST(Amortization, TotalsAndPerUnit) {
  PlatformAmortization pa(/*platform_design_nre=*/40e6, /*mask=*/1.2e6);
  pa.add_variant({2e6, 4e6, false});   // S/W variant, no new masks
  pa.add_variant({1e6, 4e6, true});    // metal respin variant
  EXPECT_EQ(pa.variant_count(), 2u);
  EXPECT_DOUBLE_EQ(pa.total_volume(), 3e6);
  // 40M + 1.2M + 4M + 4M + 1.2M = 50.4M
  EXPECT_DOUBLE_EQ(pa.platform_total_nre(), 50.4e6);
  EXPECT_NEAR(pa.platform_nre_per_unit(), 50.4e6 / 3e6, 1e-9);
  // Two from-scratch ASICs at 25M design each:
  EXPECT_DOUBLE_EQ(pa.asic_total_nre(25e6), 2 * (25e6 + 1.2e6));
  EXPECT_LT(pa.platform_total_nre(), pa.asic_total_nre(25e6));
}

TEST(Amortization, EmptyPlatformPerUnitIsZero) {
  PlatformAmortization pa(40e6, 1.2e6);
  EXPECT_DOUBLE_EQ(pa.platform_nre_per_unit(), 0.0);
}

// ----------------------------------------------------------------- C3 ---

TEST(Trends, ClaimC3GrowthRates) {
  // "growth of 56% in transistor count per year ... complexity of embedded
  // S/W is rising at a staggering 140% per year".
  EXPECT_DOUBLE_EQ(hw_complexity_trend().rate(), 0.56);
  EXPECT_DOUBLE_EQ(sw_complexity_trend().rate(), 1.40);
}

TEST(Trends, CompoundGrowthMath) {
  CompoundGrowth g(100.0, 0.5, 2000.0);
  EXPECT_DOUBLE_EQ(g.value_at(2000.0), 100.0);
  EXPECT_DOUBLE_EQ(g.value_at(2001.0), 150.0);
  EXPECT_DOUBLE_EQ(g.value_at(2002.0), 225.0);
  EXPECT_NEAR(g.years_to_grow(2.25), 2.0, 1e-12);
}

TEST(Trends, ClaimC3SwOvertakesHwAroundPaperDate) {
  // "In many leading SoC's today [2003], the embedded S/W development
  // effort has surpassed that of the H/W design effort."
  const double year = crossover_year(hw_complexity_trend(), sw_complexity_trend());
  EXPECT_GT(year, 2001.0);
  EXPECT_LT(year, 2005.0);
  // After the crossover S/W stays above.
  EXPECT_GT(sw_complexity_trend().value_at(year + 1.0),
            hw_complexity_trend().value_at(year + 1.0));
  EXPECT_LT(sw_complexity_trend().value_at(year - 1.0),
            hw_complexity_trend().value_at(year - 1.0));
}

TEST(Trends, EqualRatesNeverCross) {
  CompoundGrowth a(1.0, 0.5, 2000.0);
  CompoundGrowth b(2.0, 0.5, 2000.0);
  EXPECT_TRUE(std::isinf(crossover_year(a, b)));
}

TEST(Trends, MooresLawDoublingTime) {
  // 56%/yr doubles transistor count roughly every 18-19 months.
  const double years = hw_complexity_trend().years_to_grow(2.0);
  EXPECT_GT(years, 1.4);
  EXPECT_LT(years, 1.7);
}

// ------------------------------------------------------------ yield (Y1) ---

TEST(Yield, ZeroAreaYieldsPerfectly) {
  EXPECT_DOUBLE_EQ(die_yield(0.0, YieldParams{}), 1.0);
  EXPECT_THROW(die_yield(-1.0, YieldParams{}), std::invalid_argument);
}

TEST(Yield, MonotoneInAreaAndDefects) {
  const YieldParams p{0.5, 2.0};
  EXPECT_GT(die_yield(50.0, p), die_yield(100.0, p));
  EXPECT_GT(die_yield(100.0, YieldParams{0.3, 2.0}),
            die_yield(100.0, YieldParams{0.8, 2.0}));
  // Yield is a probability.
  for (const double a : {1.0, 100.0, 1000.0}) {
    EXPECT_GT(die_yield(a, p), 0.0);
    EXPECT_LE(die_yield(a, p), 1.0);
  }
}

TEST(Yield, DefectDensityRisesForNewNodes) {
  double prev = 0.0;
  for (const auto& n : soc::tech::roadmap()) {
    const auto p = defect_params_for(n);
    EXPECT_GT(p.defects_per_cm2, prev) << n.name;
    prev = p.defects_per_cm2;
  }
}

TEST(Yield, SparesImproveArrayYield) {
  const YieldParams p{1.0, 2.0};
  const double none = array_yield_with_spares(64, 64, 2.0, 60.0, p);
  const double two = array_yield_with_spares(66, 64, 2.0, 60.0, p);
  const double four = array_yield_with_spares(68, 64, 2.0, 60.0, p);
  EXPECT_GT(two, none);
  EXPECT_GE(four, two);
  // Ceiling: the non-redundant rest of the die.
  EXPECT_LE(four, die_yield(60.0, p));
}

TEST(Yield, ArrayYieldMatchesBruteForceSmallCase) {
  // 3 blocks, need 2: P = C(3,2) q^2 (1-q) + q^3, times rest yield.
  const YieldParams p{2.0, 2.0};
  const double q = die_yield(5.0, p);
  const double expected =
      (3.0 * q * q * (1.0 - q) + q * q * q) * die_yield(10.0, p);
  EXPECT_NEAR(array_yield_with_spares(3, 2, 5.0, 10.0, p), expected, 1e-12);
}

TEST(Yield, ArrayYieldValidation) {
  EXPECT_THROW(array_yield_with_spares(4, 5, 1.0, 1.0, YieldParams{}),
               std::invalid_argument);
}

TEST(Yield, DiesPerWaferSane) {
  // 100 mm2 die on 300 mm wafer: ~600 gross dies.
  const int gross = dies_per_wafer(100.0);
  EXPECT_GT(gross, 500);
  EXPECT_LT(gross, 707);  // area bound
  EXPECT_GT(dies_per_wafer(50.0), dies_per_wafer(200.0));
  EXPECT_THROW(dies_per_wafer(0.0), std::invalid_argument);
}

TEST(Yield, CostPerGoodDie) {
  const double full = cost_per_good_die(100.0, 1.0, 4000.0);
  const double half = cost_per_good_die(100.0, 0.5, 4000.0);
  EXPECT_NEAR(half, 2.0 * full, 1e-9);
  EXPECT_TRUE(std::isinf(cost_per_good_die(100.0, 0.0)));
}

}  // namespace
}  // namespace soc::econ
