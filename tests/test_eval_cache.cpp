// The cross-sweep EvalCache memo (soc/core/eval_cache.hpp): canonical key
// injectivity, LRU bounds, and the bit-exactness property at the heart of
// ISSUE 7 — a warm sweep (every stage-1 product served from the memo) must
// reproduce the cold sweep's DsePoint stream bit for bit, at every thread
// count, for deterministic and stochastic mappers, with constraints on and
// off. Plus the hit-rate contract on an overlapping two-space sweep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "soc/apps/graphs.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/eval_cache.hpp"
#include "soc/core/objective_space.hpp"

namespace soc::core {
namespace {

using tech::Fabric;

DseSpace two_by_two_space() {
  DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  space.fabrics = {Fabric::kAsip};
  return space;
}

AnnealConfig quick_anneal() {
  AnnealConfig ac;
  ac.iterations = 300;
  return ac;
}

DseProblem mjpeg_problem() {
  return DseProblem{apps::mjpeg_task_graph(), ObjectiveSpace::default_space(),
                    ObjectiveWeights{}, tech::node_90nm()};
}

/// Field-by-field bit equality (doubles compared with ==, no tolerance):
/// the warm-vs-cold contract is bit-exactness, not closeness.
void expect_points_identical(const DsePoint& a, const DsePoint& b) {
  EXPECT_EQ(a.candidate.num_pes, b.candidate.num_pes);
  EXPECT_EQ(a.candidate.threads_per_pe, b.candidate.threads_per_pe);
  EXPECT_EQ(a.candidate.topology, b.candidate.topology);
  EXPECT_EQ(a.candidate.pe_fabric, b.candidate.pe_fabric);
  EXPECT_EQ(a.candidate.node.name, b.candidate.node.name);
  EXPECT_EQ(a.mapping_cost.bottleneck_cycles, b.mapping_cost.bottleneck_cycles);
  EXPECT_EQ(a.mapping_cost.comm_word_hops, b.mapping_cost.comm_word_hops);
  EXPECT_EQ(a.mapping_cost.energy_pj_per_item,
            b.mapping_cost.energy_pj_per_item);
  EXPECT_EQ(a.mapping_cost.pipeline_latency, b.mapping_cost.pipeline_latency);
  EXPECT_EQ(a.mapping_cost.feasible, b.mapping_cost.feasible);
  EXPECT_EQ(a.mapping_cost.objective, b.mapping_cost.objective);
  EXPECT_EQ(a.silicon.total_area_mm2, b.silicon.total_area_mm2);
  EXPECT_EQ(a.silicon.peak_dynamic_mw, b.silicon.peak_dynamic_mw);
  EXPECT_EQ(a.silicon.leakage_mw, b.silicon.leakage_mw);
  EXPECT_EQ(a.silicon.die_mm2, b.silicon.die_mm2);
  EXPECT_EQ(a.silicon.noc_wire_mm, b.silicon.noc_wire_mm);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.mapper, b.mapper);
  EXPECT_EQ(a.throughput_per_kcycle, b.throughput_per_kcycle);
  EXPECT_EQ(a.mw_per_throughput, b.mw_per_throughput);
  EXPECT_EQ(a.pareto_optimal, b.pareto_optimal);
  EXPECT_EQ(a.validated, b.validated);
  EXPECT_EQ(a.sim_throughput_per_kcycle, b.sim_throughput_per_kcycle);
  EXPECT_EQ(a.sim_to_analytic_ratio, b.sim_to_analytic_ratio);
  EXPECT_EQ(a.sim_peak_link_utilization, b.sim_peak_link_utilization);
  EXPECT_EQ(a.sim_avg_packet_latency, b.sim_avg_packet_latency);
  EXPECT_EQ(a.sim_network_saturated, b.sim_network_saturated);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.scenario_name, b.scenario_name);
}

void expect_streams_identical(const std::vector<DsePoint>& a,
                              const std::vector<DsePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_points_identical(a[i], b[i]);
  }
}

// ---------------------------------------------------------------- keying ---

TEST(EvalCacheKeys, PlatformKeySeparatesEveryAxisAndConfigKnob) {
  const DseCandidate base;
  const DseConfig dc;
  const std::string k0 = EvalCache::platform_key(base, dc);
  EXPECT_EQ(k0, EvalCache::platform_key(base, dc));  // deterministic

  DseCandidate c = base;
  c.num_pes = base.num_pes + 4;
  EXPECT_NE(k0, EvalCache::platform_key(c, dc));
  c = base;
  c.threads_per_pe = base.threads_per_pe + 1;
  EXPECT_NE(k0, EvalCache::platform_key(c, dc));
  c = base;
  c.topology = noc::TopologyKind::kCrossbar;
  EXPECT_NE(k0, EvalCache::platform_key(c, dc));
  c = base;
  c.pe_fabric = Fabric::kAsip;
  EXPECT_NE(k0, EvalCache::platform_key(c, dc));
  c = base;
  c.node = *tech::find_node("65nm");
  EXPECT_NE(k0, EvalCache::platform_key(c, dc));
  // Same node name, different electricals: still a different platform.
  c = base;
  c.node.vdd_v *= 0.9;
  EXPECT_NE(k0, EvalCache::platform_key(c, dc));

  DseConfig d = dc;
  d.die_mm2 = 225.0;
  EXPECT_NE(k0, EvalCache::platform_key(base, d));
  d = dc;
  d.physical_links = false;
  EXPECT_NE(k0, EvalCache::platform_key(base, d));
  d = dc;
  d.link_timing.fo4_per_cycle += 2.0;
  EXPECT_NE(k0, EvalCache::platform_key(base, d));
  d = dc;
  d.pe_kind_groups = 2;
  EXPECT_NE(k0, EvalCache::platform_key(base, d));
  d = dc;
  d.pe_capacity = 6.0;
  EXPECT_NE(k0, EvalCache::platform_key(base, d));
  // Knobs that cannot change the platform products do not split the key.
  d = dc;
  d.num_threads = 3;
  d.validate_pareto = true;
  EXPECT_EQ(k0, EvalCache::platform_key(base, d));
}

TEST(EvalCacheKeys, GraphKeyIgnoresNamesButSeesStructure) {
  TaskGraph a("alpha");
  a.add_node({"stage0", 100.0, 1.0, {}, 0, 1.0});
  a.add_node({"stage1", 50.0, 1.0, {}, 1, 2.0});
  a.add_edge({0, 1, 8.0});
  TaskGraph b("beta");  // same structure, different names
  b.add_node({"x", 100.0, 1.0, {}, 0, 1.0});
  b.add_node({"y", 50.0, 1.0, {}, 1, 2.0});
  b.add_edge({0, 1, 8.0});
  EXPECT_EQ(EvalCache::graph_key(a), EvalCache::graph_key(b));

  TaskGraph c("alpha");  // one payload word differs
  c.add_node({"stage0", 100.0, 1.0, {}, 0, 1.0});
  c.add_node({"stage1", 50.0, 1.0, {}, 1, 2.0});
  c.add_edge({0, 1, 9.0});
  EXPECT_NE(EvalCache::graph_key(a), EvalCache::graph_key(c));

  TaskGraph d("alpha");  // one fabric restriction differs
  d.add_node({"stage0", 100.0, 1.0, {Fabric::kAsip}, 0, 1.0});
  d.add_node({"stage1", 50.0, 1.0, {}, 1, 2.0});
  d.add_edge({0, 1, 8.0});
  EXPECT_NE(EvalCache::graph_key(a), EvalCache::graph_key(d));
}

TEST(EvalCacheKeys, MappingKeyDropsSeedOnlyForDeterministicMappers) {
  const std::string pk = "p", gk = "g";
  const ObjectiveWeights w;
  const MappingConstraints mc;
  const AnnealConfig ac;
  // Stochastic: the derived seed (and anneal schedule) split entries.
  EXPECT_NE(EvalCache::mapping_key(pk, gk, "anneal", w, mc, ac, false, 1),
            EvalCache::mapping_key(pk, gk, "anneal", w, mc, ac, false, 2));
  AnnealConfig longer = ac;
  longer.iterations = ac.iterations + 1;
  EXPECT_NE(EvalCache::mapping_key(pk, gk, "anneal", w, mc, ac, false, 1),
            EvalCache::mapping_key(pk, gk, "anneal", w, mc, longer, false, 1));
  // Deterministic: seeds and anneal budgets share one entry.
  EXPECT_EQ(EvalCache::mapping_key(pk, gk, "heft", w, mc, ac, true, 1),
            EvalCache::mapping_key(pk, gk, "heft", w, mc, longer, true, 2));
  // But weights and constraint policy always split.
  ObjectiveWeights w2;
  w2.comm = w.comm * 2.0;
  EXPECT_NE(EvalCache::mapping_key(pk, gk, "heft", w, mc, ac, true, 1),
            EvalCache::mapping_key(pk, gk, "heft", w2, mc, ac, true, 1));
  EXPECT_NE(
      EvalCache::mapping_key(pk, gk, "heft", w, mc, ac, true, 1),
      EvalCache::mapping_key(pk, gk, "heft", w, MappingConstraints::none(),
                             ac, true, 1));
}

// ------------------------------------------------------------- mechanics ---

TEST(EvalCache, LruEvictsOldestAndCountsIt) {
  EvalCache cache(1024, 2);  // tiny mapping shard
  cache.store_mapping("a", {{0}, {}});
  cache.store_mapping("b", {{1}, {}});
  cache.store_mapping("a", {{9}, {}});  // duplicate: first insert wins
  ASSERT_TRUE(cache.find_mapping("a"));
  EXPECT_EQ(cache.find_mapping("a")->mapping, Mapping{0});
  cache.store_mapping("c", {{2}, {}});  // capacity 2: evicts LRU entry "b"
  EXPECT_FALSE(cache.find_mapping("b"));
  EXPECT_TRUE(cache.find_mapping("a"));
  EXPECT_TRUE(cache.find_mapping("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.clear();
  EXPECT_FALSE(cache.find_mapping("a"));
  EXPECT_GE(cache.stats().mapping_misses, 2u);  // counters survive clear()
  EXPECT_THROW(EvalCache(0, 1), std::invalid_argument);
}

// ------------------------------------------- warm-vs-cold bit-exactness ---

/// Runs the same sweep cold (cache cleared) then warm (memo fully
/// populated) at several thread counts and expects every DsePoint stream
/// bit-identical to the cold serial one. `mutate` customizes the config.
void expect_warm_equals_cold(const std::string& mapper, bool constrained) {
  DseConfig dc;
  dc.mapper = mapper;
  dc.validate_pareto = true;
  dc.die_mm2 = 225.0;
  if (constrained) {
    dc.pe_kind_groups = 2;
    dc.pe_capacity = 6.0;
  }
  const DseProblem problem = mjpeg_problem();
  const DseSpace space = two_by_two_space();
  const AnnealConfig ac = quick_anneal();

  EvalCache::global().clear();
  dc.num_threads = 1;
  DseSession cold(problem, space, ac, dc);
  const std::vector<DsePoint> reference = cold.run();
  EXPECT_EQ(cold.cache_stats().mapping_hits, 0u);

  for (const int threads : {1, 3, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    dc.num_threads = threads;
    DseSession warm(problem, space, ac, dc);
    const std::vector<DsePoint> replay = warm.run();
    expect_streams_identical(reference, replay);
    EXPECT_EQ(warm.front_indices(), cold.front_indices());
    // Every stage-1 lookup must have been served from the memo.
    EXPECT_EQ(warm.cache_stats().platform_hits, reference.size());
    EXPECT_EQ(warm.cache_stats().platform_misses, 0u);
    EXPECT_EQ(warm.cache_stats().mapping_hits, reference.size());
    EXPECT_EQ(warm.cache_stats().mapping_misses, 0u);
  }
}

TEST(EvalCacheProperty, WarmAnnealSweepIsBitIdenticalToCold) {
  expect_warm_equals_cold("anneal", false);
}

TEST(EvalCacheProperty, WarmHeftSweepIsBitIdenticalToCold) {
  expect_warm_equals_cold("heft", false);
}

TEST(EvalCacheProperty, WarmGreedySweepIsBitIdenticalToCold) {
  expect_warm_equals_cold("greedy", false);
}

TEST(EvalCacheProperty, WarmConstrainedSweepsAreBitIdenticalToCold) {
  expect_warm_equals_cold("anneal", true);
  expect_warm_equals_cold("heft", true);
}

TEST(EvalCacheProperty, DisablingTheCacheIsBitIdenticalToo) {
  DseConfig dc;
  dc.die_mm2 = 225.0;
  EvalCache::global().clear();
  DseSession cached(mjpeg_problem(), two_by_two_space(), quick_anneal(), dc);
  dc.use_eval_cache = false;
  DseSession uncached(mjpeg_problem(), two_by_two_space(), quick_anneal(), dc);
  expect_streams_identical(cached.run(), uncached.run());
  EXPECT_EQ(uncached.cache_stats().platform_hits +
                uncached.cache_stats().platform_misses,
            0u);
}

// ------------------------------------------------- overlapping-sweep hits ---

TEST(EvalCacheProperty, OverlappingSweepHitsOnEverySharedCandidate) {
  DseConfig dc;
  dc.die_mm2 = 225.0;
  dc.num_threads = 1;
  const DseProblem problem = mjpeg_problem();
  const AnnealConfig ac = quick_anneal();

  EvalCache::global().clear();
  const DseSpace narrow = two_by_two_space();
  DseSession first(problem, narrow, ac, dc);
  first.evaluate();
  const std::size_t shared = first.points().size();

  // Superset space: pe_counts grows by one entry. pe_counts is an outer
  // enumeration axis, so the shared candidates keep their flat indices —
  // even the seeded annealer's mapping entries hit on all of them.
  DseSpace wide = narrow;
  wide.pe_counts.push_back(16);
  DseSession second(problem, wide, ac, dc);
  second.evaluate();
  ASSERT_GT(second.points().size(), shared);
  EXPECT_EQ(second.cache_stats().platform_hits, shared);
  EXPECT_EQ(second.cache_stats().mapping_hits, shared);
  EXPECT_EQ(second.cache_stats().platform_misses,
            second.points().size() - shared);
  // The shared candidates' points are bit-identical across the two sweeps.
  for (std::size_t i = 0; i < shared; ++i) {
    SCOPED_TRACE("shared point " + std::to_string(i));
    expect_points_identical(first.points()[i], second.points()[i]);
  }

  // A deterministic mapper additionally hits across *different* flat
  // indices: the wide sweep's extra candidates reuse nothing, but a heft
  // re-sweep of the narrow space hits even though its per-point seeds
  // differ from any earlier heft run at other indices.
  DseConfig heft_dc = dc;
  heft_dc.mapper = "heft";
  DseSession heft_a(problem, narrow, ac, heft_dc);
  heft_a.evaluate();
  AnnealConfig other_seed = ac;
  other_seed.seed = ac.seed + 17;  // different derived seeds everywhere
  DseSession heft_b(problem, narrow, other_seed, heft_dc);
  heft_b.evaluate();
  EXPECT_EQ(heft_b.cache_stats().mapping_hits, shared);
  EXPECT_EQ(heft_b.cache_stats().mapping_misses, 0u);
}

}  // namespace
}  // namespace soc::core
