// Kernel suite: functional correctness of GP and ASIP variants, and the
// speedup ordering that drives the Figure 1 / C7 fabric experiments.
#include <gtest/gtest.h>

#include "soc/proc/kernels.hpp"

namespace soc::proc {
namespace {

class KernelSuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelSuite, GpVariantIsCorrect) {
  const Kernel& k = kernel_suite()[GetParam()];
  const KernelRun r = run_gp(k);
  EXPECT_TRUE(r.correct) << k.name;
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GE(r.cycles, r.instructions);  // every op costs >= 1 cycle
}

TEST_P(KernelSuite, AsipVariantIsCorrect) {
  const Kernel& k = kernel_suite()[GetParam()];
  const KernelRun r = run_asip(k);
  EXPECT_TRUE(r.correct) << k.name;
}

TEST_P(KernelSuite, AsipBeatsGpOnCyclesAndInstructions) {
  // The whole point of instruction-set specialization (Section 6.2).
  const Kernel& k = kernel_suite()[GetParam()];
  const KernelRun gp = run_gp(k);
  const KernelRun asip = run_asip(k);
  EXPECT_LT(asip.cycles, gp.cycles) << k.name;
  EXPECT_LT(asip.instructions, gp.instructions) << k.name;
  const double speedup =
      static_cast<double>(gp.cycles) / static_cast<double>(asip.cycles);
  // Speedups range from ~1.4x (checksum: the fused op removes only part
  // of a memory-bound loop) to ~10x (CRC: an 8-iteration bit loop folds
  // into one instruction).
  EXPECT_GT(speedup, 1.3) << k.name << " speedup=" << speedup;
  EXPECT_LT(speedup, 40.0) << k.name;  // sanity: no free lunch
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSuite,
                         ::testing::Values(0u, 1u, 2u),
                         [](const auto& info) {
                           return kernel_suite()[info.param].name;
                         });

TEST(KernelSuiteMeta, ThreeKernelsWithDistinctNames) {
  const auto& suite = kernel_suite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_NE(suite[0].name, suite[1].name);
  EXPECT_NE(suite[1].name, suite[2].name);
  for (const auto& k : suite) {
    EXPECT_GT(k.useful_ops, 0u);
    EXPECT_FALSE(k.description.empty());
  }
}

TEST(KernelCrc, SpeedupDominatedByBitLoopElimination) {
  // CRC replaces an 8-iteration bit loop per byte with one instruction:
  // expect roughly an order of magnitude.
  const Kernel& k = kernel_suite()[0];
  ASSERT_EQ(k.name, "crc32");
  const double speedup = static_cast<double>(run_gp(k).cycles) /
                         static_cast<double>(run_asip(k).cycles);
  EXPECT_GT(speedup, 8.0);
}

TEST(KernelRuns, AreDeterministic) {
  const Kernel& k = kernel_suite()[1];
  const KernelRun a = run_gp(k);
  const KernelRun b = run_gp(k);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
}

}  // namespace
}  // namespace soc::proc
