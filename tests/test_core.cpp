// MultiFlex core: task graphs, mapping evaluation, the three mappers'
// quality ordering (A2), and DSE sweep/Pareto logic.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "dse_session_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/mapping.hpp"
#include "soc/core/objective_space.hpp"
#include "soc/core/task_graph.hpp"
#include "soc/core/validate.hpp"

namespace soc::core {
namespace {

using tech::Fabric;

TaskNode named_node(const char* name) {
  TaskNode t;
  t.name = name;
  return t;
}

TaskGraph chain_graph(int n, double ops = 100.0) {
  TaskGraph g("chain");
  for (int i = 0; i < n; ++i) {
    TaskNode t;
    t.name = "t" + std::to_string(i);
    t.work_ops = ops;
    g.add_node(std::move(t));
  }
  for (int i = 0; i + 1 < n; ++i) g.add_edge({i, i + 1, 8.0});
  return g;
}

PlatformDesc uniform_platform(int pes, Fabric f = Fabric::kGeneralPurposeCpu,
                              noc::TopologyKind topo = noc::TopologyKind::kMesh2D) {
  return PlatformDesc(std::vector<PeDesc>(static_cast<std::size_t>(pes),
                                          PeDesc{f, 4, {}, 0.0}),
                      topo, tech::node_90nm());
}

// -------------------------------------------------------------- TaskGraph ---

TEST(TaskGraph, BuildAndQuery) {
  const auto g = chain_graph(4);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edges().size(), 3u);
  EXPECT_DOUBLE_EQ(g.total_work_ops(), 400.0);
  EXPECT_DOUBLE_EQ(g.total_comm_words(), 24.0);
  EXPECT_EQ(g.sources(), std::vector<int>{0});
  EXPECT_EQ(g.sinks(), std::vector<int>{3});
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  TaskGraph g("diamond");
  const int a = g.add_node(named_node("a"));
  const int b = g.add_node(named_node("b"));
  const int c = g.add_node(named_node("c"));
  const int d = g.add_node(named_node("d"));
  g.add_edge({a, b, 1});
  g.add_edge({a, c, 1});
  g.add_edge({b, d, 1});
  g.add_edge({c, d, 1});
  const auto order = g.topological_order();
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  EXPECT_LT(pos[static_cast<std::size_t>(a)], pos[static_cast<std::size_t>(b)]);
  EXPECT_LT(pos[static_cast<std::size_t>(b)], pos[static_cast<std::size_t>(d)]);
  EXPECT_LT(pos[static_cast<std::size_t>(c)], pos[static_cast<std::size_t>(d)]);
}

TEST(TaskGraph, AdjacencyListsTrackEdges) {
  TaskGraph g("diamond");
  const int a = g.add_node(named_node("a"));
  const int b = g.add_node(named_node("b"));
  const int c = g.add_node(named_node("c"));
  const int d = g.add_node(named_node("d"));
  g.add_edge({a, b, 1});
  g.add_edge({a, c, 2});
  g.add_edge({b, d, 3});
  g.add_edge({c, d, 4});
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_EQ(g.out_degree(a), 2);
  EXPECT_EQ(g.in_degree(a), 0);
  EXPECT_EQ(g.in_degree(d), 2);
  EXPECT_EQ(g.out_degree(d), 0);
  // Edge indices round-trip through edge() and agree with edges().
  for (int i = 0; i < g.node_count(); ++i) {
    for (const int ei : g.out_edges(i)) EXPECT_EQ(g.edge(ei).src, i);
    for (const int ei : g.in_edges(i)) EXPECT_EQ(g.edge(ei).dst, i);
  }
  EXPECT_DOUBLE_EQ(g.edge(g.in_edges(d)[0]).words_per_item, 3.0);
  // Degrees sum to edge count on both sides.
  int in_sum = 0, out_sum = 0;
  for (int i = 0; i < g.node_count(); ++i) {
    in_sum += g.in_degree(i);
    out_sum += g.out_degree(i);
  }
  EXPECT_EQ(in_sum, g.edge_count());
  EXPECT_EQ(out_sum, g.edge_count());
}

TEST(TaskGraph, CycleDetection) {
  TaskGraph g("cyclic");
  const int a = g.add_node(named_node("a"));
  const int b = g.add_node(named_node("b"));
  g.add_edge({a, b, 1});
  g.add_edge({b, a, 1});
  EXPECT_THROW(g.topological_order(), std::logic_error);
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g("bad");
  g.add_node(named_node("only"));
  EXPECT_THROW(g.add_edge({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(g.add_edge({0, 5, 1}), std::invalid_argument);
}

TEST(TaskNode, FabricPermissions) {
  TaskNode any;
  EXPECT_TRUE(any.allows(Fabric::kGeneralPurposeCpu));
  EXPECT_TRUE(any.allows(Fabric::kAsip));
  EXPECT_FALSE(any.allows(Fabric::kHardwired));  // default: programmable only
  TaskNode hw;
  hw.allowed_fabrics = {Fabric::kHardwired};
  EXPECT_TRUE(hw.allows(Fabric::kHardwired));
  EXPECT_FALSE(hw.allows(Fabric::kGeneralPurposeCpu));
}

// ----------------------------------------------------------- PlatformDesc ---

TEST(PlatformDesc, HopMatrixMatchesTopology) {
  const auto p = uniform_platform(16, Fabric::kGeneralPurposeCpu,
                                  noc::TopologyKind::kMesh2D);
  EXPECT_EQ(p.pe_count(), 16);
  EXPECT_EQ(p.hops(0, 0), 0);
  EXPECT_EQ(p.hops(0, 15), 6);  // 4x4 corner-to-corner... terminals=16
  EXPECT_GT(p.avg_hops(), 0.0);
  EXPECT_THROW(p.hops(0, 99), std::out_of_range);
}

TEST(PlatformDesc, RejectsEmpty) {
  EXPECT_THROW(PlatformDesc({}, noc::TopologyKind::kBus, tech::node_90nm()),
               std::invalid_argument);
}

// ------------------------------------------------------- evaluate_mapping ---

TEST(EvaluateMapping, AllOnOnePeSerializes) {
  const auto g = chain_graph(4, 100.0);
  const auto p = uniform_platform(4);
  const MappingCost all_one =
      evaluate_mapping(g, p, Mapping{0, 0, 0, 0});
  const MappingCost spread =
      evaluate_mapping(g, p, Mapping{0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(all_one.bottleneck_cycles, 400.0);
  EXPECT_DOUBLE_EQ(spread.bottleneck_cycles, 100.0);
  EXPECT_DOUBLE_EQ(all_one.comm_word_hops, 0.0);
  EXPECT_GT(spread.comm_word_hops, 0.0);  // comm now crosses the NoC
}

TEST(EvaluateMapping, InfeasibleFabricPenalized) {
  TaskGraph g("hw-only");
  TaskNode t;
  t.work_ops = 10;
  t.allowed_fabrics = {Fabric::kHardwired};
  g.add_node(std::move(t));
  const auto p = uniform_platform(2);  // GP CPUs only
  const auto cost = evaluate_mapping(g, p, Mapping{0});
  EXPECT_FALSE(cost.feasible);
  EXPECT_GT(cost.objective, 1e8);
}

TEST(EvaluateMapping, AsipReducesCyclesAndEnergy) {
  const auto g = chain_graph(3);
  const auto gp = uniform_platform(3, Fabric::kGeneralPurposeCpu);
  const auto asip = uniform_platform(3, Fabric::kAsip);
  const Mapping m{0, 1, 2};
  const auto cg = evaluate_mapping(g, gp, m);
  const auto ca = evaluate_mapping(g, asip, m);
  EXPECT_GT(cg.bottleneck_cycles, ca.bottleneck_cycles);
  EXPECT_GT(cg.energy_pj_per_item, ca.energy_pj_per_item);
}

TEST(EvaluateMapping, PipelineLatencyAtLeastSumOfChain) {
  const auto g = chain_graph(4, 50.0);
  const auto p = uniform_platform(4);
  const auto c = evaluate_mapping(g, p, Mapping{0, 1, 2, 3});
  EXPECT_GE(c.pipeline_latency, 200.0);  // 4 x 50 plus hop latency
}

TEST(EvaluateMapping, SizeMismatchThrows) {
  const auto g = chain_graph(3);
  const auto p = uniform_platform(2);
  EXPECT_THROW(evaluate_mapping(g, p, Mapping{0}), std::invalid_argument);
  EXPECT_THROW(evaluate_mapping(g, p, Mapping{0, 1, 7}), std::out_of_range);
}

// ---------------------------------------------------------------- mappers ---

TEST(Mappers, GreedyBalancesLoad) {
  // 8 equal tasks on 4 PEs: greedy must achieve the 2-tasks-per-PE optimum.
  TaskGraph g("parallel");
  for (int i = 0; i < 8; ++i) {
    TaskNode t;
    t.name = "t" + std::to_string(i);
    t.work_ops = 100;
    g.add_node(std::move(t));
  }
  const auto p = uniform_platform(4);
  const auto m = greedy_mapping(g, p);
  const auto c = evaluate_mapping(g, p, m);
  EXPECT_DOUBLE_EQ(c.bottleneck_cycles, 200.0);
}

TEST(Mappers, OrderingRandomGreedyAnneal) {
  // A2: anneal <= greedy <= typical random on a non-trivial graph.
  const auto g = soc::apps::mjpeg_task_graph();
  const auto p = uniform_platform(6);
  const ObjectiveWeights w;

  sim::Rng rng(3);
  double random_best = 1e18;
  for (int i = 0; i < 5; ++i) {
    const auto rm = random_mapping(g, p, rng);
    random_best =
        std::min(random_best, evaluate_mapping(g, p, rm, w).objective);
  }
  const double greedy =
      evaluate_mapping(g, p, greedy_mapping(g, p, w), w).objective;
  AnnealConfig ac;
  ac.iterations = 5000;
  const double anneal =
      evaluate_mapping(g, p, anneal_mapping(g, p, w, ac), w).objective;

  EXPECT_LE(greedy, random_best * 1.2);
  EXPECT_LE(anneal, greedy + 1e-9);
}

TEST(Mappers, RandomRespectsFeasibilityWhenPossible) {
  const auto g = soc::apps::ipv4_task_graph();
  // Mixed platform: 2 GP + 2 hardwired "PEs".
  std::vector<PeDesc> pes{{Fabric::kGeneralPurposeCpu, 4, {}, 0.0},
                          {Fabric::kGeneralPurposeCpu, 4, {}, 0.0},
                          {Fabric::kHardwired, 1, {}, 0.0},
                          {Fabric::kHardwired, 1, {}, 0.0}};
  PlatformDesc p(pes, noc::TopologyKind::kMesh2D, tech::node_90nm());
  sim::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto m = random_mapping(g, p, rng);
    EXPECT_TRUE(evaluate_mapping(g, p, m).feasible);
  }
}

TEST(Mappers, AnnealIsDeterministicForSeed) {
  const auto g = soc::apps::wlan_task_graph();
  // Platform that can host every wlan task: ASIPs + 1 eFPGA-ish + DSP mix.
  std::vector<PeDesc> pes{{Fabric::kDsp, 4, {}, 0.0},   {Fabric::kDsp, 4, {}, 0.0},
                          {Fabric::kAsip, 4, {}, 0.0},  {Fabric::kAsip, 4, {}, 0.0},
                          {Fabric::kEfpga, 1, {}, 0.0}, {Fabric::kEfpga, 1, {}, 0.0},
                          {Fabric::kGeneralPurposeCpu, 4, {}, 0.0},
                          {Fabric::kGeneralPurposeCpu, 4, {}, 0.0}};
  PlatformDesc p(pes, noc::TopologyKind::kFatTree, tech::node_90nm());
  AnnealConfig ac;
  ac.iterations = 3000;
  ac.seed = 11;
  const auto m1 = anneal_mapping(g, p, {}, ac);
  const auto m2 = anneal_mapping(g, p, {}, ac);
  EXPECT_EQ(m1, m2);
}

// -------------------------------------------------------------------- DSE ---

TEST(Dse, SweepProducesAllCandidatesAndMarksPareto) {
  DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  // The IPv4 graph's DMA stages require ASIP or hardwired engines, so a
  // GP-only platform would be infeasible end-to-end.
  space.fabrics = {Fabric::kAsip};
  AnnealConfig quick;
  quick.iterations = 500;
  const auto points = run_session(soc::apps::ipv4_task_graph(), space,
                              tech::node_90nm(), {}, quick);
  EXPECT_EQ(points.size(), 4u);
  int pareto = 0;
  for (const auto& pt : points) pareto += pt.pareto_optimal;
  EXPECT_GE(pareto, 1);
  EXPECT_LT(pareto, 4);

  // More PEs -> more throughput but more area (monotone along one axis).
  const auto& p4 = points[0];
  const auto& p8 = points[2];
  EXPECT_GE(p8.throughput_per_kcycle, p4.throughput_per_kcycle * 0.99);
  EXPECT_GT(p8.silicon.total_area_mm2, p4.silicon.total_area_mm2);
}

TEST(Dse, ParetoDominanceLogic) {
  std::vector<DsePoint> pts(2);
  pts[0].throughput_per_kcycle = 10;
  pts[0].silicon.total_area_mm2 = 5;
  pts[0].silicon.peak_dynamic_mw = 100;
  pts[0].mapping_cost.feasible = true;
  pts[1].throughput_per_kcycle = 5;  // dominated on all axes
  pts[1].silicon.total_area_mm2 = 6;
  pts[1].silicon.peak_dynamic_mw = 120;
  pts[1].mapping_cost.feasible = true;
  const auto front = ObjectiveSpace::default_space().mark_front(pts);
  EXPECT_EQ(front, std::vector<std::size_t>{0});
  EXPECT_TRUE(pts[0].pareto_optimal);
  EXPECT_FALSE(pts[1].pareto_optimal);
}

TEST(Dse, EnumerateCandidatesMatchesSweepOrder) {
  DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {1, 2};
  space.topologies = {noc::TopologyKind::kBus};
  space.fabrics = {Fabric::kAsip, Fabric::kDsp};
  const auto cands = enumerate_candidates(space);
  ASSERT_EQ(cands.size(), 8u);
  // pe_counts outermost, fabrics innermost.
  EXPECT_EQ(cands[0].num_pes, 4);
  EXPECT_EQ(cands[0].pe_fabric, Fabric::kAsip);
  EXPECT_EQ(cands[1].pe_fabric, Fabric::kDsp);
  EXPECT_EQ(cands[2].threads_per_pe, 2);
  EXPECT_EQ(cands[4].num_pes, 8);
}

TEST(Dse, ParallelSweepBitIdenticalToSerial) {
  // The tentpole contract: sharding candidates across threads must not
  // change a single bit of the result — same ordering, same costs, same
  // Pareto front — because every candidate's annealer is seeded from
  // (anneal.seed, index), not from whichever thread picked it up.
  DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  space.fabrics = {Fabric::kAsip, Fabric::kDsp};
  AnnealConfig quick;
  quick.iterations = 400;

  const auto graph = soc::apps::ipv4_task_graph();
  const auto& node = tech::node_90nm();
  const auto serial = run_session(graph, space, node, {}, quick, DseConfig{1});
  for (const int threads : {2, 5, 0}) {  // 0 = hardware_concurrency
    const auto parallel =
        run_session(graph, space, node, {}, quick, DseConfig{threads});
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " point " +
                   std::to_string(i));
      EXPECT_EQ(parallel[i].candidate.num_pes, serial[i].candidate.num_pes);
      EXPECT_EQ(parallel[i].candidate.threads_per_pe,
                serial[i].candidate.threads_per_pe);
      EXPECT_EQ(parallel[i].candidate.topology, serial[i].candidate.topology);
      EXPECT_EQ(parallel[i].candidate.pe_fabric, serial[i].candidate.pe_fabric);
      // Bit-identical doubles: plain EQ, no tolerance.
      EXPECT_EQ(parallel[i].mapping_cost.objective,
                serial[i].mapping_cost.objective);
      EXPECT_EQ(parallel[i].mapping_cost.bottleneck_cycles,
                serial[i].mapping_cost.bottleneck_cycles);
      EXPECT_EQ(parallel[i].mapping_cost.comm_word_hops,
                serial[i].mapping_cost.comm_word_hops);
      EXPECT_EQ(parallel[i].mapping_cost.energy_pj_per_item,
                serial[i].mapping_cost.energy_pj_per_item);
      EXPECT_EQ(parallel[i].throughput_per_kcycle,
                serial[i].throughput_per_kcycle);
      EXPECT_EQ(parallel[i].mw_per_throughput, serial[i].mw_per_throughput);
      EXPECT_EQ(parallel[i].pareto_optimal, serial[i].pareto_optimal);
    }
  }
}

TEST(Dse, RejectsEmptyAxesWithClearErrors) {
  const auto expect_throw_mentioning = [](DseSpace space,
                                          const std::string& field) {
    try {
      enumerate_candidates(space);
      FAIL() << "expected invalid_argument for empty " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  DseSpace s;
  s.pe_counts.clear();
  expect_throw_mentioning(s, "pe_counts");
  s = DseSpace{};
  s.thread_counts.clear();
  expect_throw_mentioning(s, "thread_counts");
  s = DseSpace{};
  s.topologies.clear();
  expect_throw_mentioning(s, "topologies");
  s = DseSpace{};
  s.fabrics.clear();
  expect_throw_mentioning(s, "fabrics");

  // The session constructor performs the same validation before any work.
  s = DseSpace{};
  s.pe_counts.clear();
  EXPECT_THROW(run_session(soc::apps::ipv4_task_graph(), s, tech::node_90nm()),
               std::invalid_argument);
}

TEST(Dse, RejectsNonPositiveAxisEntries) {
  DseSpace s;
  s.pe_counts = {4, 0};
  EXPECT_THROW(enumerate_candidates(s), std::invalid_argument);
  s = DseSpace{};
  s.thread_counts = {-1};
  EXPECT_THROW(enumerate_candidates(s), std::invalid_argument);
}

TEST(Dse, RejectsEmptyTaskGraph) {
  EXPECT_THROW(run_session(TaskGraph("empty"), DseSpace{}, tech::node_90nm()),
               std::invalid_argument);
}

TEST(Dse, RecordsTheMappingBehindEachPoint) {
  DseSpace space;
  space.pe_counts = {8};  // 8 PEs on a 4-node graph -> 2 replicas
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kMesh2D};
  space.fabrics = {Fabric::kAsip};
  TaskGraph g("quad");
  for (int i = 0; i < 4; ++i) g.add_node(TaskNode{"t", 100, 1, {}});
  AnnealConfig quick;
  quick.iterations = 200;
  const auto points = run_session(g, space, tech::node_90nm(), {}, quick);
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].mapping.size(), 8u);  // replicated work graph
  for (const int pe : points[0].mapping) {
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, 8);
  }
  // The stored mapping is the one the recorded cost was computed from.
  std::vector<PeDesc> pes(8, PeDesc{Fabric::kAsip, 2, {}, 0.0});
  PlatformDesc platform(std::move(pes), noc::TopologyKind::kMesh2D,
                        tech::node_90nm());
  const auto cost =
      evaluate_mapping(g.replicated(2), platform, points[0].mapping);
  EXPECT_EQ(cost.objective, points[0].mapping_cost.objective);
}

// -------------------------------------------------- process-node DSE axis ---

TEST(Dse, NodeAxisMultipliesTheCandidateSpace) {
  DseSpace space;
  space.nodes = {*tech::find_node("130nm"), *tech::find_node("65nm")};
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kMesh2D};
  space.fabrics = {Fabric::kAsip};
  const auto cands = enumerate_candidates(space);
  ASSERT_EQ(cands.size(), 4u);  // 2 nodes x 2 pe_counts
  // Nodes are the outermost axis.
  EXPECT_EQ(cands[0].node.name, "130nm");
  EXPECT_EQ(cands[1].node.name, "130nm");
  EXPECT_EQ(cands[2].node.name, "65nm");
  EXPECT_EQ(cands[3].node.name, "65nm");
  EXPECT_EQ(cands[0].num_pes, 4);
  EXPECT_EQ(cands[1].num_pes, 8);
}

TEST(Dse, EmptyNodeAxisUsesTheFallbackNode) {
  DseSpace space;
  space.pe_counts = {4};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus};
  space.fabrics = {Fabric::kAsip};
  const auto cands = enumerate_candidates(space, *tech::find_node("50nm"));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].node.name, "50nm");
}

TEST(Dse, SweepRecordsEachCandidatesNode) {
  DseSpace space;
  space.nodes = {*tech::find_node("130nm"), *tech::find_node("65nm")};
  space.pe_counts = {4};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kMesh2D};
  space.fabrics = {Fabric::kAsip};
  AnnealConfig quick;
  quick.iterations = 200;
  const auto points =
      run_session(soc::apps::ipv4_task_graph(), space, tech::node_90nm(), {}, quick);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].candidate.node.name, "130nm");
  EXPECT_EQ(points[1].candidate.node.name, "65nm");
  // Silicon shrinks and the mask set gets dearer with the node.
  EXPECT_GT(points[0].silicon.total_area_mm2, points[1].silicon.total_area_mm2);
  EXPECT_LT(points[0].silicon.mask_nre_usd, points[1].silicon.mask_nre_usd);
}

TEST(Dse, PhysicalFrontShiftsBetween130nmAnd65nm) {
  // The acceptance experiment: the same design space swept at 130 nm and at
  // 65 nm on the same fixed 225 mm^2 die must Pareto-select different
  // platforms, and the shift must coincide with nonzero tech-derived wire
  // latency at 65 nm (at 130 nm every wire still fits in one clock).
  DseSpace space;
  space.pe_counts = {4, 8, 16};
  space.thread_counts = {2, 4};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D,
                      noc::TopologyKind::kCrossbar};
  space.fabrics = {Fabric::kAsip};
  AnnealConfig ac;
  ac.iterations = 2000;
  DseConfig dc;
  dc.die_mm2 = 225.0;
  const auto graph = soc::apps::mjpeg_task_graph();

  const auto front_of = [&](const char* node_name) {
    DseSpace s = space;
    s.nodes = {*tech::find_node(node_name)};
    const auto points = run_session(graph, s, tech::node_90nm(), {}, ac, dc);
    std::set<std::string> front;
    for (const auto& pt : points) {
      if (!pt.pareto_optimal) continue;
      front.insert(std::to_string(pt.candidate.num_pes) + "x" +
                   std::to_string(pt.candidate.threads_per_pe) + " " +
                   noc::to_string(pt.candidate.topology));
    }
    return front;
  };
  const auto front_130 = front_of("130nm");
  const auto front_65 = front_of("65nm");
  EXPECT_FALSE(front_130.empty());
  EXPECT_FALSE(front_65.empty());
  EXPECT_NE(front_130, front_65);

  // The driver of the shift: at 65 nm the shared-medium topologies carry
  // multi-cycle wires, at 130 nm none do.
  for (const auto topo : space.topologies) {
    DseCandidate cand{16, 4, topo, Fabric::kAsip, *tech::find_node("65nm")};
    const auto p65 = make_candidate_platform(cand, dc);
    cand.node = *tech::find_node("130nm");
    const auto p130 = make_candidate_platform(cand, dc);
    int extra65 = 0, extra130 = 0;
    for (int a = 0; a < 16; ++a) {
      for (int b = 0; b < 16; ++b) {
        extra65 += p65.path_extra_cycles(a, b);
        extra130 += p130.path_extra_cycles(a, b);
      }
    }
    EXPECT_EQ(extra130, 0) << noc::to_string(topo);
    if (topo != noc::TopologyKind::kMesh2D) {
      EXPECT_GT(extra65, 0) << noc::to_string(topo);
    }
  }
}

TEST(Dse, MakeCandidatePlatformReproducesSweepCosts) {
  // The stored mapping re-evaluated on the re-derived (physically
  // annotated) platform must reproduce the sweep's recorded cost bit for
  // bit — the contract platform_dse relies on to re-derive mappings.
  DseSpace space;
  space.pe_counts = {8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kCrossbar};
  space.fabrics = {Fabric::kAsip};
  space.nodes = {*tech::find_node("65nm")};
  AnnealConfig quick;
  quick.iterations = 300;
  DseConfig dc;
  dc.die_mm2 = 225.0;
  const auto graph = soc::apps::mjpeg_task_graph();
  const auto points = run_session(graph, space, tech::node_90nm(), {}, quick, dc);
  ASSERT_EQ(points.size(), 1u);
  const PlatformDesc platform = make_candidate_platform(points[0].candidate, dc);
  ASSERT_TRUE(platform.physical().has_value());
  const int replicas = std::max(1, 8 / graph.node_count());
  const auto work = replicas > 1 ? graph.replicated(replicas) : graph;
  const auto cost = evaluate_mapping(work, platform, points[0].mapping);
  EXPECT_EQ(cost.objective, points[0].mapping_cost.objective);
  EXPECT_EQ(cost.energy_pj_per_item, points[0].mapping_cost.energy_pj_per_item);
  EXPECT_EQ(cost.pipeline_latency, points[0].mapping_cost.pipeline_latency);
}

TEST(Dse, PhysicalLinksOffRecoversAbstractSweep) {
  DseSpace space;
  space.pe_counts = {4};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kCrossbar};
  space.fabrics = {Fabric::kAsip};
  space.nodes = {*tech::find_node("65nm")};
  DseConfig abstract;
  abstract.physical_links = false;
  abstract.die_mm2 = 225.0;
  const auto platform =
      make_candidate_platform(enumerate_candidates(space)[0], abstract);
  EXPECT_FALSE(platform.physical().has_value());
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(platform.path_extra_cycles(a, b), 0);
    }
  }
}

TEST(Dse, RejectsNegativeDieArea) {
  DseConfig bad;
  bad.die_mm2 = -1.0;
  EXPECT_THROW(run_session(soc::apps::ipv4_task_graph(), DseSpace{},
                       tech::node_90nm(), {}, {}, bad),
               std::invalid_argument);
}

TEST(Dse, RejectsNegativeThreadCount) {
  DseConfig bad;
  bad.num_threads = -2;
  EXPECT_THROW(run_session(soc::apps::ipv4_task_graph(), DseSpace{},
                       tech::node_90nm(), {}, {}, bad),
               std::invalid_argument);
  std::vector<DsePoint> pts(1);
  EXPECT_THROW(ObjectiveSpace::default_space().mark_front(pts, bad),
               std::invalid_argument);
}

TEST(Dse, ToStringContainsKeyFields) {
  DsePoint pt;
  pt.candidate = {16, 4, noc::TopologyKind::kMesh2D, Fabric::kAsip};
  pt.throughput_per_kcycle = 3.0;
  const auto s = to_string(pt);
  EXPECT_NE(s.find("16 PEs"), std::string::npos);
  EXPECT_NE(s.find("mesh"), std::string::npos);
  EXPECT_NE(s.find("asip"), std::string::npos);
}

TEST(TaskGraph, ReplicatedBuildsDisjointCopies) {
  const auto g = chain_graph(3, 50.0);
  const auto r = g.replicated(4);
  EXPECT_EQ(r.node_count(), 12);
  EXPECT_EQ(r.edges().size(), 8u);
  EXPECT_DOUBLE_EQ(r.total_work_ops(), 4 * g.total_work_ops());
  EXPECT_EQ(r.sources().size(), 4u);
  EXPECT_EQ(r.sinks().size(), 4u);
  EXPECT_NO_THROW(r.topological_order());
  // Edges stay within their copy.
  for (const auto& e : r.edges()) {
    EXPECT_EQ(e.src / 3, e.dst / 3);
  }
  EXPECT_THROW(g.replicated(0), std::invalid_argument);
}

TEST(TaskGraph, ReplicatedScalesThroughputOnBiggerPlatforms) {
  const auto g = chain_graph(4, 100.0);
  const auto p4 = uniform_platform(4);
  const auto p16 = uniform_platform(16);
  const auto m4 = greedy_mapping(g, p4);
  const auto r = g.replicated(4);
  const auto m16 = greedy_mapping(r, p16);
  const double single = evaluate_mapping(g, p4, m4).bottleneck_cycles;
  const double replicated = evaluate_mapping(r, p16, m16).bottleneck_cycles;
  // 4 streams on 4x the PEs: same per-stream bottleneck.
  EXPECT_NEAR(replicated, single, 1e-9);
}

// ------------------------------------------------- cross-level validation ---

TEST(Validate, SimulationConfirmsAnalyticBottleneck) {
  // A balanced 4-stage pipeline on 4 PEs at 90% of predicted capacity:
  // the platform must keep up, so measured cycles/item ~ predicted/0.9
  // and the bottleneck PE runs near 90% busy.
  const auto g = chain_graph(4, 200.0);
  const auto p = uniform_platform(4);
  const Mapping m{0, 1, 2, 3};
  ValidationConfig vc;
  vc.threads_per_pe = 4;
  const auto r = validate_mapping(g, p, m, vc);
  EXPECT_GT(r.items_completed, 100u);
  EXPECT_DOUBLE_EQ(r.predicted_bottleneck_cycles, 200.0);
  EXPECT_GT(r.ratio, 1.0);
  EXPECT_LT(r.ratio, 1.25);
  EXPECT_GT(r.bottleneck_pe_utilization, 0.8);
  EXPECT_LT(r.bottleneck_pe_utilization, 1.0);
}

TEST(Validate, DetectsSerializedMapping) {
  // All stages on one PE: the model predicts 4x fewer items/cycle, and the
  // simulation at each mapping's own 90%-capacity point confirms both.
  const auto g = chain_graph(4, 200.0);
  const auto p = uniform_platform(4);
  const auto spread = validate_mapping(g, p, Mapping{0, 1, 2, 3});
  const auto lumped = validate_mapping(g, p, Mapping{0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(lumped.predicted_bottleneck_cycles, 800.0);
  EXPECT_GT(lumped.measured_cycles_per_item,
            3.0 * spread.measured_cycles_per_item);
  EXPECT_GT(lumped.ratio, 1.0);
  EXPECT_LT(lumped.ratio, 1.25);
}

TEST(Validate, RejectsNonChainGraphs) {
  TaskGraph g("diamond");
  const int a = g.add_node(named_node("a"));
  const int b = g.add_node(named_node("b"));
  const int c = g.add_node(named_node("c"));
  g.add_edge({a, b, 1});
  g.add_edge({a, c, 1});
  const auto p = uniform_platform(3);
  EXPECT_THROW(validate_mapping(g, p, Mapping{0, 1, 2}),
               std::invalid_argument);
}

TEST(Validate, IPv4GraphEndToEnd) {
  // The bundled IPv4 pipeline is a chain; validate the annealed mapping.
  const auto g = soc::apps::ipv4_task_graph();
  std::vector<PeDesc> pes(8, PeDesc{tech::Fabric::kAsip, 4, {}, 0.0});
  PlatformDesc p(pes, noc::TopologyKind::kMesh2D, tech::node_90nm());
  AnnealConfig ac;
  ac.iterations = 4000;
  const auto m = anneal_mapping(g, p, {}, ac);
  const auto r = validate_mapping(g, p, m);
  EXPECT_GT(r.items_completed, 100u);
  // The IPv4 stages are fine-grained (2-10 cycles of compute on ASIPs), so
  // per-message DSOC marshalling and NI serialization — which the analytic
  // bottleneck term does not model — dominate: the simulation runs ~2-4x
  // slower than predicted (the exact ratio depends on which of several
  // equal-objective placements the annealer lands on). This quantifies
  // exactly where the fast cost model stops being trustworthy and the
  // cycle-level simulation must take over (the paper's
  // multi-level-abstraction argument, Section 3).
  EXPECT_GT(r.ratio, 1.5);
  EXPECT_LT(r.ratio, 4.0);
}

// --------------------------------------------------------- bundled graphs ---

TEST(BundledGraphs, AreValidDags) {
  for (const auto& g : {soc::apps::ipv4_task_graph(),
                        soc::apps::mjpeg_task_graph(),
                        soc::apps::wlan_task_graph()}) {
    EXPECT_GE(g.node_count(), 6);
    EXPECT_NO_THROW(g.topological_order());
    EXPECT_FALSE(g.sources().empty());
    EXPECT_FALSE(g.sinks().empty());
    EXPECT_GT(g.total_work_ops(), 0.0);
  }
}

}  // namespace
}  // namespace soc::core
