// The session-oriented DSE API: staged execution, the pluggable
// ObjectiveSpace dominance registry (energy axis included), the streaming
// point observer, single-build topology reuse across both stages
// (counter-backed), and the bit-exactness contract of the deprecated
// run_dse / mark_pareto_front shims.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "soc/apps/graphs.hpp"
#include "soc/core/dse.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/mapping_validator.hpp"
#include "soc/core/objective_space.hpp"
#include "soc/core/scenario.hpp"
#include "soc/noc/topology.hpp"
#include "soc/platform/cost.hpp"

namespace soc::core {
namespace {

using tech::Fabric;

/// Small validated sweep shared by several tests: 2 pe_counts x 2
/// topologies on the mjpeg graph.
DseSpace small_space() {
  DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  space.fabrics = {Fabric::kAsip};
  return space;
}

AnnealConfig quick_anneal(int iterations = 400) {
  AnnealConfig ac;
  ac.iterations = iterations;
  return ac;
}

DseProblem mjpeg_problem() {
  return DseProblem{apps::mjpeg_task_graph(), ObjectiveSpace::default_space(),
                    ObjectiveWeights{}, tech::node_90nm()};
}

/// Field-by-field bit equality of two DsePoints (doubles compared with ==,
/// no tolerance — the shim contract is bit-exactness).
void expect_points_identical(const DsePoint& a, const DsePoint& b) {
  EXPECT_EQ(a.candidate.num_pes, b.candidate.num_pes);
  EXPECT_EQ(a.candidate.threads_per_pe, b.candidate.threads_per_pe);
  EXPECT_EQ(a.candidate.topology, b.candidate.topology);
  EXPECT_EQ(a.candidate.pe_fabric, b.candidate.pe_fabric);
  EXPECT_EQ(a.candidate.node.name, b.candidate.node.name);
  EXPECT_EQ(a.mapping_cost.bottleneck_cycles, b.mapping_cost.bottleneck_cycles);
  EXPECT_EQ(a.mapping_cost.comm_word_hops, b.mapping_cost.comm_word_hops);
  EXPECT_EQ(a.mapping_cost.energy_pj_per_item,
            b.mapping_cost.energy_pj_per_item);
  EXPECT_EQ(a.mapping_cost.pipeline_latency, b.mapping_cost.pipeline_latency);
  EXPECT_EQ(a.mapping_cost.feasible, b.mapping_cost.feasible);
  EXPECT_EQ(a.mapping_cost.objective, b.mapping_cost.objective);
  EXPECT_EQ(a.silicon.total_area_mm2, b.silicon.total_area_mm2);
  EXPECT_EQ(a.silicon.peak_dynamic_mw, b.silicon.peak_dynamic_mw);
  EXPECT_EQ(a.silicon.leakage_mw, b.silicon.leakage_mw);
  EXPECT_EQ(a.silicon.die_mm2, b.silicon.die_mm2);
  EXPECT_EQ(a.silicon.noc_wire_mm, b.silicon.noc_wire_mm);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.mapper, b.mapper);
  EXPECT_EQ(a.throughput_per_kcycle, b.throughput_per_kcycle);
  EXPECT_EQ(a.mw_per_throughput, b.mw_per_throughput);
  EXPECT_EQ(a.pareto_optimal, b.pareto_optimal);
  EXPECT_EQ(a.validated, b.validated);
  EXPECT_EQ(a.sim_throughput_per_kcycle, b.sim_throughput_per_kcycle);
  EXPECT_EQ(a.sim_to_analytic_ratio, b.sim_to_analytic_ratio);
  EXPECT_EQ(a.sim_peak_link_utilization, b.sim_peak_link_utilization);
  EXPECT_EQ(a.sim_avg_packet_latency, b.sim_avg_packet_latency);
  EXPECT_EQ(a.sim_network_saturated, b.sim_network_saturated);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.scenario_name, b.scenario_name);
}

// -------------------------------------------------------- staged execution ---

TEST(DseSession, StagesRunOnceAndAutoRunPrerequisites) {
  DseSession s(mjpeg_problem(), small_space(), quick_anneal());
  EXPECT_FALSE(s.enumerated());
  EXPECT_FALSE(s.evaluated());
  EXPECT_FALSE(s.front_marked());
  EXPECT_FALSE(s.validated());

  // front() pulls enumerate() and evaluate() in automatically.
  const auto& front = s.front();
  EXPECT_TRUE(s.enumerated());
  EXPECT_TRUE(s.evaluated());
  EXPECT_TRUE(s.front_marked());
  EXPECT_FALSE(s.validated());
  ASSERT_EQ(s.points().size(), 4u);
  EXPECT_GE(front.size(), 1u);
  // Front indices ascend and agree with the flags.
  EXPECT_TRUE(std::is_sorted(front.begin(), front.end()));
  for (std::size_t i = 0; i < s.points().size(); ++i) {
    const bool in_front =
        std::find(front.begin(), front.end(), i) != front.end();
    EXPECT_EQ(s.points()[i].pareto_optimal, in_front);
  }

  // Stages are cached: the same vectors come back.
  const auto* pts = s.points().data();
  s.evaluate();
  s.front();
  EXPECT_EQ(s.points().data(), pts);
}

TEST(DseSession, ExplicitValidateWorksWithoutValidateParetoFlag) {
  // The flag only steers run(); calling validate() directly is the staged
  // caller's explicit intent.
  DseSession s(mjpeg_problem(), small_space(), quick_anneal());
  EXPECT_FALSE(s.config().validate_pareto);
  s.validate();
  EXPECT_TRUE(s.validated());
  int validated = 0;
  for (const auto& pt : s.points()) {
    if (pt.pareto_optimal) {
      EXPECT_TRUE(pt.validated);
      ++validated;
    } else {
      EXPECT_FALSE(pt.validated);
    }
  }
  EXPECT_GE(validated, 1);
}

TEST(DseSession, RunReturnsCopyAndKeepsSessionInspectable) {
  DseConfig dc;
  dc.validate_pareto = true;
  DseSession s(mjpeg_problem(), small_space(), quick_anneal(), dc);
  const auto points = s.run();
  EXPECT_TRUE(s.validated());
  ASSERT_EQ(points.size(), s.points().size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_points_identical(points[i], s.points()[i]);
  }
  // Contexts stay inspectable after the run.
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(s.context(i).candidate().num_pes, points[i].candidate.num_pes);
    EXPECT_EQ(s.context(i).platform().pe_count(), points[i].candidate.num_pes);
  }
}

// ------------------------------------------------------- streaming observer ---

TEST(DseSession, ObserverStreamsEveryPointPerStage) {
  DseConfig dc;
  dc.validate_pareto = true;
  dc.num_threads = 1;  // serial: completion order == sweep order
  DseSession s(mjpeg_problem(), small_space(), quick_anneal(), dc);
  std::vector<int> evaluated_pes;
  int validated_count = 0;
  s.on_point([&](const DsePoint& pt, DseSession::Stage stage) {
    if (stage == DseSession::Stage::kEvaluated) {
      evaluated_pes.push_back(pt.candidate.num_pes);
      EXPECT_FALSE(pt.validated);
    } else {
      EXPECT_TRUE(pt.validated);
      EXPECT_TRUE(pt.pareto_optimal);
      ++validated_count;
    }
  });
  s.run();
  // One kEvaluated call per candidate, in sweep order when serial.
  ASSERT_EQ(evaluated_pes.size(), 4u);
  EXPECT_EQ(evaluated_pes, (std::vector<int>{4, 4, 8, 8}));
  EXPECT_EQ(validated_count,
            static_cast<int>(s.front_indices().size()));
}

TEST(DseSession, ObserverSeesEveryPointAtAnyThreadCount) {
  DseConfig dc;
  dc.num_threads = 4;
  DseSession s(mjpeg_problem(), small_space(), quick_anneal(), dc);
  std::vector<int> seen;
  s.on_point([&](const DsePoint& pt, DseSession::Stage) {
    seen.push_back(pt.candidate.num_pes);  // serialized by the session
  });
  s.evaluate();
  EXPECT_EQ(seen.size(), 4u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{4, 4, 8, 8}));
}

// ------------------------------------------------------ objective registry ---

TEST(ObjectiveSpace, BuiltInAxesAreRegistered) {
  for (const char* name : {"tput", "area", "power", "energy"}) {
    EXPECT_TRUE(is_registered_objective(name)) << name;
  }
  const auto names = registered_objectives();
  EXPECT_GE(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ObjectiveSpace, UnknownAxisThrowsListingRegistry) {
  try {
    make_objective("no-such-axis");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-axis"), std::string::npos);
    EXPECT_NE(msg.find("tput"), std::string::npos);
    EXPECT_NE(msg.find("energy"), std::string::npos);
  }
}

TEST(ObjectiveSpace, FromNamesParsesOrderAndRejectsJunk) {
  const auto space = ObjectiveSpace::from_names("tput,area,power,energy");
  ASSERT_EQ(space.size(), 4u);
  EXPECT_EQ(space.axis(0).name, "tput");
  EXPECT_EQ(space.axis(0).direction, ObjectiveDirection::kMaximize);
  EXPECT_EQ(space.axis(3).name, "energy");
  EXPECT_EQ(space.axis(3).direction, ObjectiveDirection::kMinimize);
  EXPECT_EQ(space.names(), "tput,area,power,energy");

  EXPECT_THROW(ObjectiveSpace::from_names(""), std::invalid_argument);
  EXPECT_THROW(ObjectiveSpace::from_names("tput,"), std::invalid_argument);
  EXPECT_THROW(ObjectiveSpace::from_names("tput,tput"), std::invalid_argument);
  EXPECT_THROW(ObjectiveSpace::from_names("tput,bogus"),
               std::invalid_argument);
}

TEST(ObjectiveSpace, DefaultSpaceIsTheHistoricalTriple) {
  EXPECT_EQ(ObjectiveSpace::default_space().names(), "tput,area,power");
}

TEST(ObjectiveSpace, CustomAxisRegistersAndRanks) {
  register_objective("test-latency", ObjectiveDirection::kMinimize,
                     [](const DsePoint& p) {
                       return p.mapping_cost.pipeline_latency;
                     });
  EXPECT_TRUE(is_registered_objective("test-latency"));
  auto space = ObjectiveSpace::default_space();
  space.add("test-latency");
  EXPECT_EQ(space.size(), 4u);
  EXPECT_EQ(space.names(), "tput,area,power,test-latency");
}

TEST(ObjectiveSpace, DominatesRespectsDirections) {
  DsePoint a, b;
  a.throughput_per_kcycle = 10;
  a.silicon.total_area_mm2 = 5;
  a.silicon.peak_dynamic_mw = 100;
  b.throughput_per_kcycle = 5;
  b.silicon.total_area_mm2 = 6;
  b.silicon.peak_dynamic_mw = 120;
  const auto space = ObjectiveSpace::default_space();
  EXPECT_TRUE(space.dominates(a, b));
  EXPECT_FALSE(space.dominates(b, a));
  EXPECT_FALSE(space.dominates(a, a));  // equal on every axis: not strict
  EXPECT_THROW(ObjectiveSpace().dominates(a, b), std::logic_error);
}

// ------------------------------------------------------------- energy axis ---

TEST(ObjectiveSpace, EnergyAxisCanGrowTheFront) {
  // Point 1 is dominated on the classic triple but leads on energy: the
  // 4-axis space must keep it while the 3-axis space drops it.
  std::vector<DsePoint> pts(2);
  pts[0].throughput_per_kcycle = 10;
  pts[0].silicon.total_area_mm2 = 5;
  pts[0].silicon.peak_dynamic_mw = 100;
  pts[0].mapping_cost.energy_pj_per_item = 900;
  pts[1].throughput_per_kcycle = 5;
  pts[1].silicon.total_area_mm2 = 6;
  pts[1].silicon.peak_dynamic_mw = 120;
  pts[1].mapping_cost.energy_pj_per_item = 300;

  const auto front3 = ObjectiveSpace::default_space().mark_front(pts);
  EXPECT_EQ(front3, (std::vector<std::size_t>{0}));
  const auto front4 =
      ObjectiveSpace::from_names("tput,area,power,energy").mark_front(pts);
  EXPECT_EQ(front4, (std::vector<std::size_t>{0, 1}));
}

TEST(DseSession, FourAxisFrontIsASupersetOfTheTriple) {
  // Dominance over more axes is strictly harder, so every 3-axis survivor
  // survives the 4-axis space too.
  DseProblem p3 = mjpeg_problem();
  DseSession s3(std::move(p3), small_space(), quick_anneal());
  const auto front3 = s3.front();

  DseProblem p4 = mjpeg_problem();
  p4.objectives = ObjectiveSpace::from_names("tput,area,power,energy");
  DseSession s4(std::move(p4), small_space(), quick_anneal());
  const auto front4 = s4.front();

  EXPECT_GE(front4.size(), front3.size());
  EXPECT_TRUE(std::includes(front4.begin(), front4.end(), front3.begin(),
                            front3.end()));
  // The analytic figures themselves are objective-set-independent.
  ASSERT_EQ(s3.points().size(), s4.points().size());
  for (std::size_t i = 0; i < s3.points().size(); ++i) {
    EXPECT_EQ(s3.points()[i].mapping_cost.objective,
              s4.points()[i].mapping_cost.objective);
  }
}

// --------------------------------------------------------- input validation ---

TEST(DseSession, RejectsBadInputsNamingTheField) {
  const auto expect_throw_mentioning = [](auto make_session,
                                          const std::string& field) {
    try {
      make_session();
      FAIL() << "expected invalid_argument mentioning " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };

  expect_throw_mentioning(
      [] {
        DseConfig bad;
        bad.die_mm2 = -1.0;
        return DseSession(mjpeg_problem(), small_space(), {}, bad);
      },
      "die_mm2");
  expect_throw_mentioning(
      [] {
        DseConfig bad;
        bad.num_threads = -2;
        return DseSession(mjpeg_problem(), small_space(), {}, bad);
      },
      "num_threads");
  expect_throw_mentioning(
      [] {
        DseConfig bad;
        bad.validate_pareto = true;
        bad.validation.warmup_cycles = 0;
        return DseSession(mjpeg_problem(), small_space(), {}, bad);
      },
      "validation.warmup_cycles");
  expect_throw_mentioning(
      [] {
        DseConfig bad;
        bad.validate_pareto = true;
        bad.validation.measure_cycles = 0;
        return DseSession(mjpeg_problem(), small_space(), {}, bad);
      },
      "validation.measure_cycles");
  expect_throw_mentioning(
      [] {
        DseConfig bad;
        bad.validate_pareto = true;
        bad.validation.load_factor = 1.5;
        return DseSession(mjpeg_problem(), small_space(), {}, bad);
      },
      "validation.load_factor");
  expect_throw_mentioning(
      [] {
        DseConfig bad;
        bad.validate_pareto = true;
        bad.validation.max_outstanding_rounds = 0;
        return DseSession(mjpeg_problem(), small_space(), {}, bad);
      },
      "validation.max_outstanding_rounds");
  expect_throw_mentioning(
      [] {
        DseProblem p = mjpeg_problem();
        p.objectives = ObjectiveSpace();
        return DseSession(std::move(p), small_space());
      },
      "objectives");
  expect_throw_mentioning(
      [] {
        return DseSession(
            DseProblem{TaskGraph("empty"), ObjectiveSpace::default_space()},
            small_space());
      },
      "task graph");
}

TEST(DseSession, ValidatorKnobsRejectedOnlyWhenArmed) {
  // Without validate_pareto the stage-2 knobs are inert, so construction
  // and the analytic stages succeed — but an explicit validate() arms the
  // replay and re-polices them, field-named.
  DseConfig dc;
  dc.validate_pareto = false;
  dc.validation.warmup_cycles = 0;
  DseSession s(mjpeg_problem(), small_space(), quick_anneal(), dc);
  EXPECT_NO_THROW(s.front());
  try {
    s.validate();
    FAIL() << "expected invalid_argument for warmup_cycles";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("validation.warmup_cycles"),
              std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(s.validated());
}

TEST(ObjectiveSpace, MarkFrontIgnoresInertReplayKnobs) {
  // The dominance pass never simulates: like the historical
  // mark_pareto_front, it polices num_threads/die_mm2 but not the stage-2
  // replay fields.
  std::vector<DsePoint> pts(1);
  pts[0].mapping_cost.feasible = true;
  DseConfig dc;
  dc.validate_pareto = true;
  dc.validation.warmup_cycles = 0;
  EXPECT_NO_THROW(ObjectiveSpace::default_space().mark_front(pts, dc));
  dc.num_threads = -1;
  EXPECT_THROW(ObjectiveSpace::default_space().mark_front(pts, dc),
               std::invalid_argument);
}

// ----------------------------------------------- single-build reuse contract ---

TEST(DseSession, ValidatedSweepBuildsEachCandidateTopologyExactlyOnce) {
  // The EvalContext contract, metered: a full validated sweep performs
  // exactly two topology builds and two floorplans per candidate — the cost
  // interconnect and the PE interconnect — with stage 2 adding zero. The
  // monolith rebuilt (and re-floorplanned) up to five per validated point.
  DseConfig dc;
  dc.validate_pareto = true;
  EvalCache::global().clear();  // cold sweep: the build count is the point
  DseSession s(mjpeg_problem(), small_space(), quick_anneal(), dc);
  const noc::TopologyBuildStatsScope scope;  // no global reset: delta-metered
  s.run();
  const auto stats = scope.delta();
  const auto n = s.points().size();
  EXPECT_GE(s.front_indices().size(), 1u);
  EXPECT_EQ(stats.builds, 2 * n);
  EXPECT_EQ(stats.floorplans, 2 * n);
}

TEST(DseSession, ValidateConsumesOnlyFrontTopologies) {
  DseConfig dc;
  dc.validate_pareto = true;
  EvalCache::global().clear();  // cache-hit contexts own no topology
  DseSession s(mjpeg_problem(), small_space(), quick_anneal(), dc);
  s.evaluate();
  for (std::size_t i = 0; i < s.points().size(); ++i) {
    EXPECT_TRUE(s.context(i).has_topology());
  }
  s.validate();
  for (std::size_t i = 0; i < s.points().size(); ++i) {
    EXPECT_EQ(s.context(i).has_topology(), !s.points()[i].pareto_optimal);
  }
}

TEST(EvalContext, SharesOneAnnotatedTopologyWithTheReplay) {
  DseConfig dc;
  dc.die_mm2 = 225.0;
  const DseCandidate cand{8, 2, noc::TopologyKind::kCrossbar, Fabric::kAsip,
                          *tech::find_node("65nm")};
  const auto graph = apps::mjpeg_task_graph();
  EvalContext ctx(graph, cand, dc);
  EXPECT_EQ(ctx.platform().pe_count(), 8);
  EXPECT_EQ(ctx.replicas(), 1);
  EXPECT_TRUE(ctx.has_topology());
  ASSERT_TRUE(ctx.platform().physical().has_value());

  // The platform matrices were derived from the instance the context still
  // holds: per-pair wire stages recomputed from that instance agree.
  auto topo = ctx.take_topology();
  EXPECT_FALSE(ctx.has_topology());
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->terminal_count(), 8);
  int matrix_extra = 0;
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      matrix_extra += ctx.platform().path_extra_cycles(a, b);
    }
  }
  int topo_extra = 0;
  for (const auto& l : topo->links()) {
    topo_extra += static_cast<int>(l.extra_latency);
  }
  EXPECT_GT(matrix_extra, 0);  // 65 nm crossbar on a big die: real wires
  EXPECT_GT(topo_extra, 0);
  EXPECT_THROW(EvalContext(TaskGraph("empty"), cand, dc),
               std::invalid_argument);
}

TEST(PlatformDesc, PrebuiltTopologyConstructorMatchesSelfBuilt) {
  const auto node = *tech::find_node("65nm");
  std::optional<noc::PhysicalSpec> phys(
      noc::PhysicalSpec{noc::LinkTimingModel(node), 225.0});
  std::vector<PeDesc> pes(8, PeDesc{Fabric::kAsip, 2, {}, 0.0});
  const PlatformDesc self_built(pes, noc::TopologyKind::kMesh2D, node, phys);
  const auto prebuilt_topo =
      noc::make_topology(noc::TopologyKind::kMesh2D, 8, &*phys);
  const PlatformDesc from_prebuilt(pes, noc::TopologyKind::kMesh2D, node, phys,
                                   *prebuilt_topo);
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      EXPECT_EQ(self_built.hops(a, b), from_prebuilt.hops(a, b));
      EXPECT_EQ(self_built.path_extra_cycles(a, b),
                from_prebuilt.path_extra_cycles(a, b));
      EXPECT_EQ(self_built.wire_pj_per_word(a, b),
                from_prebuilt.wire_pj_per_word(a, b));
    }
  }
  EXPECT_EQ(self_built.avg_hops(), from_prebuilt.avg_hops());
  EXPECT_EQ(self_built.avg_path_latency_cycles(),
            from_prebuilt.avg_path_latency_cycles());

  // Terminal-count mismatch is rejected.
  const auto wrong = noc::make_topology(noc::TopologyKind::kMesh2D, 4);
  EXPECT_THROW(
      PlatformDesc(pes, noc::TopologyKind::kMesh2D, node, phys, *wrong),
      std::invalid_argument);
}

TEST(MappingValidator, PrebuiltTopologyMatchesRebuiltReplay) {
  TaskGraph g("chain4");
  for (int i = 0; i < 4; ++i) {
    TaskNode t;
    t.name = "s" + std::to_string(i);
    t.work_ops = 300;
    g.add_node(std::move(t));
  }
  for (int i = 0; i + 1 < 4; ++i) g.add_edge({i, i + 1, 12.0});
  const auto node = *tech::find_node("65nm");
  std::optional<noc::PhysicalSpec> phys(
      noc::PhysicalSpec{noc::LinkTimingModel(node), 225.0});
  PlatformDesc p(std::vector<PeDesc>(4, PeDesc{Fabric::kGeneralPurposeCpu, 4, {}, 0.0}),
                 noc::TopologyKind::kCrossbar, node, phys);
  const Mapping m{0, 1, 2, 3};

  MappingValidator rebuilt(g, p, m);
  MappingValidator shared(g, p, m, {}, p.build_topology());
  const auto ra = rebuilt.run();
  const auto rb = shared.run();
  EXPECT_EQ(ra.simulated_items_per_kcycle, rb.simulated_items_per_kcycle);
  EXPECT_EQ(ra.avg_packet_latency, rb.avg_packet_latency);
  EXPECT_EQ(ra.peak_link_utilization, rb.peak_link_utilization);

  // After the first run consumed the prebuilt instance, later runs rebuild
  // deterministically.
  const auto rb2 = shared.run();
  EXPECT_EQ(rb.avg_packet_latency, rb2.avg_packet_latency);

  // Terminal-count mismatch is rejected.
  EXPECT_THROW(MappingValidator(g, p, m, {},
                                noc::make_topology(noc::TopologyKind::kBus, 7)),
               std::invalid_argument);
}

TEST(PlatformCost, PrebuiltTopologyOverloadMatchesAndValidates) {
  platform::FppaConfig fc;
  fc.num_pes = 8;
  fc.threads_per_pe = 2;
  fc.topology = noc::TopologyKind::kMesh2D;
  const auto& node = tech::node_90nm();
  const auto baseline = platform::estimate_cost(fc, node);
  auto topo = noc::make_topology(fc.topology, fc.terminal_count());
  const auto shared = platform::estimate_cost(fc, node, {}, *topo);
  EXPECT_EQ(baseline.total_area_mm2, shared.total_area_mm2);
  EXPECT_EQ(baseline.peak_dynamic_mw, shared.peak_dynamic_mw);
  EXPECT_EQ(baseline.die_mm2, shared.die_mm2);
  EXPECT_EQ(baseline.noc_wire_mm, shared.noc_wire_mm);
  // The passed instance was annotated in place.
  double wire_mm = 0.0;
  for (const auto& l : topo->links()) wire_mm += l.length_mm;
  EXPECT_GT(wire_mm, 0.0);

  auto wrong = noc::make_topology(fc.topology, 4);
  EXPECT_THROW(platform::estimate_cost(fc, node, {}, *wrong),
               std::invalid_argument);
}

// ----------------------------------------------------- scenario-set sweeps ---

/// Three small tagged scenario graphs (kinds in [0,2), demand in [0.5,2]).
ScenarioSet three_scenarios() {
  const ScenarioGenerator gen(41);
  ScenarioSpec spec;
  spec.depth = 3;
  spec.width = 3;
  spec.kinds = 2;
  spec.demand_min = 0.5;
  spec.demand_max = 2.0;
  ScenarioSet set;
  for (int i = 0; i < 3; ++i) {
    spec.shape = static_cast<ScenarioShape>(i % 3);
    set.push_back(gen.generate(spec, i));
  }
  return set;
}

TEST(DseSession, ScenarioSweepLaysOutPointsScenarioMajor) {
  const ScenarioSet set = three_scenarios();
  DseSession s(mjpeg_problem(), set, small_space(), quick_anneal(200));
  EXPECT_EQ(s.scenario_count(), 3);
  s.evaluate();
  const std::size_t ncand = 4;  // small_space: 2 pe_counts x 2 topologies
  ASSERT_EQ(s.points().size(), 3 * ncand);
  for (std::size_t f = 0; f < s.points().size(); ++f) {
    const int sc = static_cast<int>(f / ncand);
    EXPECT_EQ(s.points()[f].scenario, sc);
    EXPECT_EQ(s.points()[f].scenario_name, set[static_cast<std::size_t>(sc)].name());
    EXPECT_EQ(s.scenario(sc).name(), set[static_cast<std::size_t>(sc)].name());
    // The context really evaluated this scenario's graph on this candidate.
    EXPECT_EQ(s.context(f).platform().pe_count(),
              s.points()[f].candidate.num_pes);
  }
  // The rendered point names its scenario.
  EXPECT_NE(to_string(s.points()[0]).find("[" + set[0].name() + "]"),
            std::string::npos);
}

TEST(DseSession, OneScenarioSetBitExactWithSingleGraphSession) {
  // A one-graph scenario set must reproduce the single-graph session bit
  // for bit — same flat indices, same RNG streams, same figures.
  DseConfig dc;
  dc.validate_pareto = true;
  DseSession single(mjpeg_problem(), small_space(), quick_anneal(), dc);
  DseSession via_set(mjpeg_problem(), ScenarioSet{apps::mjpeg_task_graph()},
                     small_space(), quick_anneal(), dc);
  const auto a = single.run();
  const auto b = via_set.run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_points_identical(a[i], b[i]);
  }
  EXPECT_EQ(single.front_indices(), via_set.front_indices());
  ASSERT_EQ(via_set.scenario_fronts().size(), 1u);
  EXPECT_EQ(via_set.scenario_fronts()[0], via_set.front_indices());
}

TEST(DseSession, PerScenarioFrontsPartitionTheAggregate) {
  DseSession s(mjpeg_problem(), three_scenarios(), small_space(),
               quick_anneal(200));
  const auto& aggregate = s.front();
  const auto& fronts = s.scenario_fronts();
  ASSERT_EQ(fronts.size(), 3u);
  const std::size_t ncand = 4;
  std::vector<std::size_t> merged;
  for (std::size_t sc = 0; sc < fronts.size(); ++sc) {
    EXPECT_GE(fronts[sc].size(), 1u);  // every scenario keeps a survivor
    EXPECT_TRUE(std::is_sorted(fronts[sc].begin(), fronts[sc].end()));
    for (const std::size_t f : fronts[sc]) {
      // Front indices are flat and stay inside their scenario's slice:
      // dominance never crosses scenarios.
      EXPECT_GE(f, sc * ncand);
      EXPECT_LT(f, (sc + 1) * ncand);
      merged.push_back(f);
    }
  }
  // Aggregate = ascending union of the per-scenario fronts, and the
  // pareto_optimal flags agree with it.
  EXPECT_EQ(aggregate, merged);
  for (std::size_t f = 0; f < s.points().size(); ++f) {
    const bool in_front =
        std::find(aggregate.begin(), aggregate.end(), f) != aggregate.end();
    EXPECT_EQ(s.points()[f].pareto_optimal, in_front);
  }
}

TEST(DseSession, ScenarioSweepBitIdenticalAcrossThreadCounts) {
  const ScenarioSet set = three_scenarios();
  std::vector<DsePoint> reference;
  for (const int threads : {1, 3, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DseConfig dc;
    dc.num_threads = threads;
    DseSession s(mjpeg_problem(), set, small_space(), quick_anneal(200), dc);
    s.front();
    if (reference.empty()) {
      reference = s.points();
      continue;
    }
    ASSERT_EQ(s.points().size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      SCOPED_TRACE("point " + std::to_string(i));
      expect_points_identical(reference[i], s.points()[i]);
    }
  }
}

TEST(DseSession, ConstrainedSweepIsFeasibleOrTyped) {
  // Striped PE kinds + per-PE capacity on tagged scenarios: with repair in
  // the loop every point must come back feasible (these instances are
  // satisfiable), and any infeasible point must carry typed violations.
  DseConfig dc;
  dc.pe_kind_groups = 2;
  dc.pe_capacity = 64.0;  // generous: satisfiable, but the checker is armed
  DseSession s(mjpeg_problem(), three_scenarios(), small_space(),
               quick_anneal(200), dc);
  s.evaluate();
  for (const auto& pt : s.points()) {
    EXPECT_TRUE(pt.mapping_cost.feasible || !pt.mapping_cost.violations.empty())
        << "untyped infeasible point";
    EXPECT_TRUE(pt.mapping_cost.feasible);
    EXPECT_TRUE(pt.mapping_cost.violations.empty());
  }
}

TEST(DseSession, RejectsBadScenarioAndConstraintConfigByName) {
  const auto expect_throw_mentioning = [](auto make_session,
                                          const std::string& field) {
    try {
      make_session();
      FAIL() << "expected invalid_argument mentioning " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  expect_throw_mentioning(
      [] {
        DseConfig bad;
        bad.pe_kind_groups = -1;
        return DseSession(mjpeg_problem(), small_space(), {}, bad);
      },
      "pe_kind_groups");
  expect_throw_mentioning(
      [] {
        DseConfig bad;
        bad.pe_capacity = -0.5;
        return DseSession(mjpeg_problem(), small_space(), {}, bad);
      },
      "pe_capacity");
  expect_throw_mentioning(
      [] {
        return DseSession(mjpeg_problem(), ScenarioSet{}, small_space());
      },
      "scenario");
  expect_throw_mentioning(
      [] {
        return DseSession(mjpeg_problem(),
                          ScenarioSet{apps::mjpeg_task_graph(),
                                      TaskGraph("hollow")},
                          small_space());
      },
      "scenario 1");
}

// --------------------------------------------------- deprecated shim parity ---

// The shims under test are deprecated on purpose; this suite is their
// regression harness. Suppression is scoped to the two wrappers below — the
// only expressions that touch a deprecated symbol — so an accidental shim
// use anywhere else in these tests still warns (and, under -Werror, fails).

/// run_dse with the deprecation warning silenced at the call site only.
std::vector<DsePoint> run_dse_shim(const TaskGraph& graph,
                                   const DseSpace& space,
                                   const tech::ProcessNode& node,
                                   const ObjectiveWeights& weights,
                                   const AnnealConfig& anneal,
                                   const DseConfig& config) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return run_dse(graph, space, node, weights, anneal, config);
#pragma GCC diagnostic pop
}

/// mark_pareto_front with the deprecation warning silenced at the call site
/// only.
std::vector<std::size_t> mark_pareto_front_shim(std::vector<DsePoint>& points) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return mark_pareto_front(points);
#pragma GCC diagnostic pop
}

TEST(DeprecatedShims, RunDseBitExactAgainstSessionForMappersAndThreads) {
  // The back-compat property: run_dse must return bit-identical DsePoint
  // vectors (every field) to the equivalent 3-axis DseSession run, for any
  // registered mapper and any thread count, with validation on.
  const auto graph = apps::mjpeg_task_graph();
  const auto space = small_space();
  const auto ac = quick_anneal();
  for (const std::string mapper : {"anneal", "heft", "greedy"}) {
    for (const int threads : {1, 3, 0}) {
      SCOPED_TRACE(mapper + " threads=" + std::to_string(threads));
      DseConfig dc;
      dc.validate_pareto = true;
      dc.num_threads = threads;
      dc.mapper = mapper;
      const auto shim =
          run_dse_shim(graph, space, tech::node_90nm(), {}, ac, dc);
      DseSession session(
          DseProblem{graph, ObjectiveSpace::default_space(), {},
                     tech::node_90nm()},
          space, ac, dc);
      const auto direct = session.run();
      ASSERT_EQ(shim.size(), direct.size());
      for (std::size_t i = 0; i < shim.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expect_points_identical(shim[i], direct[i]);
      }
    }
  }
}

TEST(DeprecatedShims, MarkParetoFrontMatchesDefaultObjectiveSpace) {
  DseSession session(mjpeg_problem(), small_space(), quick_anneal());
  session.evaluate();
  auto via_shim = session.points();
  auto via_space = session.points();
  const auto front_shim = mark_pareto_front_shim(via_shim);
  const auto front_space =
      ObjectiveSpace::default_space().mark_front(via_space);
  EXPECT_EQ(front_shim, front_space);
  for (std::size_t i = 0; i < via_shim.size(); ++i) {
    EXPECT_EQ(via_shim[i].pareto_optimal, via_space[i].pareto_optimal);
  }
}

}  // namespace
}  // namespace soc::core
