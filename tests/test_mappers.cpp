// Mapper strategy registry, the HEFT list scheduler, and the bit-exactness
// contract between IncrementalObjective and the full evaluate_mapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dse_session_util.hpp"
#include "soc/apps/graphs.hpp"
#include "test_fixtures.hpp"
#include "soc/core/dse.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/exact_sum.hpp"
#include "soc/core/incremental_objective.hpp"
#include "soc/core/mapper.hpp"
#include "soc/core/mapping.hpp"
#include "soc/core/objective_space.hpp"

namespace soc::core {
namespace {

using tech::Fabric;

// cpu_asip_platform / random_dag moved to the shared test_fixtures.hpp.

// ------------------------------------------------------------ PairwiseSum ---

TEST(PairwiseSum, PointUpdatesMatchRebuild) {
  sim::Rng rng(17);
  for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                              std::size_t{100}}) {
    std::vector<double> leaves(n);
    for (auto& v : leaves) v = rng.next_double() * 1e3;
    PairwiseSum tree;
    tree.assign(leaves);
    EXPECT_EQ(tree.total(), PairwiseSum::reduce(leaves));
    // 50 random point updates: tree total must stay bit-identical to a
    // from-scratch reduction of the mutated leaves.
    for (int step = 0; step < 50; ++step) {
      const std::size_t i = rng.next_below(n);
      leaves[i] = rng.next_double() * 1e3;
      tree.set(i, leaves[i]);
      ASSERT_EQ(tree.total(), PairwiseSum::reduce(leaves));
      ASSERT_EQ(tree.get(i), leaves[i]);
    }
  }
  EXPECT_EQ(PairwiseSum().total(), 0.0);
}

// -------------------------------------------------- IncrementalObjective ---

TEST(IncrementalObjective, MatchesFullEvaluatorOnConstruction) {
  const auto g = soc::apps::mjpeg_task_graph();
  const auto p = cpu_asip_platform(6);
  const ObjectiveWeights w;
  sim::Rng rng(3);
  const Mapping m = random_mapping(g, p, rng);
  IncrementalObjective inc(g, p, w, m);
  const MappingCost full = evaluate_mapping(g, p, m, w);
  EXPECT_EQ(inc.objective(), full.objective);
  EXPECT_EQ(inc.bottleneck_cycles(), full.bottleneck_cycles);
  EXPECT_EQ(inc.comm_word_hops(), full.comm_word_hops);
  EXPECT_EQ(inc.energy_pj_per_item(), full.energy_pj_per_item);
  EXPECT_EQ(inc.feasible(), full.feasible);
}

TEST(IncrementalObjective, BitExactOverRandomizedMoveSequences) {
  // The tentpole contract: after ANY sequence of try_move/revert calls the
  // incremental evaluator's state is bit-identical (EXPECT_EQ on doubles, no
  // tolerance) to a from-scratch evaluation of the same mapping.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    sim::Rng rng(seed);
    const int nodes = 8 + static_cast<int>(rng.next_below(12));
    const auto g = random_dag(rng, nodes, nodes / 2);
    const auto p = cpu_asip_platform(3 + static_cast<int>(rng.next_below(6)));
    const ObjectiveWeights w;
    Mapping m = random_mapping(g, p, rng);
    IncrementalObjective inc(g, p, w, m);

    for (int step = 0; step < 300; ++step) {
      const int task = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(g.node_count())));
      const int new_pe = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(p.pe_count())));
      const double before = inc.objective();
      inc.try_move(task, new_pe);
      if (rng.next_bool(0.4)) {
        inc.revert();
        ASSERT_EQ(inc.objective(), before) << "seed=" << seed << " step=" << step;
      }
      const MappingCost full = evaluate_mapping(g, p, inc.mapping(), w);
      ASSERT_EQ(inc.objective(), full.objective)
          << "seed=" << seed << " step=" << step;
      ASSERT_EQ(inc.bottleneck_cycles(), full.bottleneck_cycles)
          << "seed=" << seed << " step=" << step;
      ASSERT_EQ(inc.comm_word_hops(), full.comm_word_hops)
          << "seed=" << seed << " step=" << step;
      ASSERT_EQ(inc.energy_pj_per_item(), full.energy_pj_per_item)
          << "seed=" << seed << " step=" << step;
      ASSERT_EQ(inc.feasible(), full.feasible)
          << "seed=" << seed << " step=" << step;
    }
  }
}

TEST(IncrementalObjective, ValidatesInputs) {
  const auto g = soc::apps::ipv4_task_graph();
  const auto p = cpu_asip_platform(4);
  EXPECT_THROW(IncrementalObjective(g, p, {}, Mapping{0}),
               std::invalid_argument);
  Mapping bad(static_cast<std::size_t>(g.node_count()), 0);
  bad[0] = 99;
  EXPECT_THROW(IncrementalObjective(g, p, {}, bad), std::out_of_range);

  Mapping ok(static_cast<std::size_t>(g.node_count()), 0);
  IncrementalObjective inc(g, p, {}, ok);
  EXPECT_THROW(inc.try_move(-1, 0), std::out_of_range);
  EXPECT_THROW(inc.try_move(0, 99), std::out_of_range);
  EXPECT_THROW(inc.revert(), std::logic_error);  // nothing applied yet
}

// ----------------------------------------------------------------- registry ---

TEST(MapperRegistry, BuiltinsRegistered) {
  const auto names = registered_mappers();
  for (const char* expected : {"anneal", "greedy", "heft", "random"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& n : names) {
    EXPECT_TRUE(is_registered_mapper(n));
    EXPECT_EQ(make_mapper(n)->name(), n);
  }
  EXPECT_FALSE(is_registered_mapper("no-such-strategy"));
  EXPECT_THROW(make_mapper("no-such-strategy"), std::invalid_argument);
}

TEST(MapperRegistry, CustomStrategyRegisters) {
  class PinToZero final : public Mapper {
   public:
    std::string_view name() const noexcept override { return "pin-to-zero"; }
    Mapping map(const TaskGraph& graph, const PlatformDesc&,
                const ObjectiveWeights&, sim::Rng&,
                const MappingConstraints&) const override {
      return Mapping(static_cast<std::size_t>(graph.node_count()), 0);
    }
  };
  register_mapper("pin-to-zero", [](const AnnealConfig&) {
    return std::unique_ptr<Mapper>(new PinToZero());
  });
  ASSERT_TRUE(is_registered_mapper("pin-to-zero"));
  const auto g = soc::apps::ipv4_task_graph();
  const auto p = cpu_asip_platform(4);
  sim::Rng rng(1);
  const auto m = make_mapper("pin-to-zero")->map(g, p, {}, rng);
  EXPECT_EQ(m, Mapping(static_cast<std::size_t>(g.node_count()), 0));
}

TEST(MapperRegistry, EveryStrategyFeasibleAndDeterministic) {
  // On a platform where every task has at least one legal PE, every
  // registered built-in must return an in-range, feasible mapping, and two
  // runs from identically-seeded RNGs must agree exactly.
  const auto p = cpu_asip_platform(6);
  for (const auto& graph : {soc::apps::ipv4_task_graph(),
                            soc::apps::mjpeg_task_graph()}) {
    for (const char* name : {"random", "greedy", "heft", "anneal"}) {
      SCOPED_TRACE(std::string(graph.name()) + " / " + name);
      AnnealConfig quick;
      quick.iterations = 1500;
      const auto mapper = make_mapper(name, quick);
      sim::Rng rng_a(99), rng_b(99);
      const Mapping a = mapper->map(graph, p, {}, rng_a);
      const Mapping b = mapper->map(graph, p, {}, rng_b);
      EXPECT_EQ(a, b);
      ASSERT_EQ(static_cast<int>(a.size()), graph.node_count());
      for (const int pe : a) {
        EXPECT_GE(pe, 0);
        EXPECT_LT(pe, p.pe_count());
      }
      EXPECT_TRUE(evaluate_mapping(graph, p, a).feasible);
    }
  }
}

// --------------------------------------------------------------------- HEFT ---

TEST(Heft, BalancesIndependentTasks) {
  // 8 equal independent tasks on 4 identical PEs: EFT placement must spread
  // them 2 per PE (any lumping would raise some task's finish time).
  TaskGraph g("parallel");
  for (int i = 0; i < 8; ++i) {
    TaskNode t;
    t.name = "t" + std::to_string(i);
    t.work_ops = 100;
    g.add_node(std::move(t));
  }
  PlatformDesc p(std::vector<PeDesc>(4, PeDesc{Fabric::kGeneralPurposeCpu, 4, {}, 0.0}),
                 noc::TopologyKind::kMesh2D, tech::node_90nm());
  const auto m = heft_mapping(g, p);
  EXPECT_DOUBLE_EQ(evaluate_mapping(g, p, m).bottleneck_cycles, 200.0);
}

TEST(Heft, RespectsFabricConstraintsWhenPossible) {
  const auto g = soc::apps::wlan_task_graph();  // needs DSP/ASIP/eFPGA mix
  std::vector<PeDesc> pes{{Fabric::kDsp, 4, {}, 0.0},   {Fabric::kAsip, 4, {}, 0.0},
                          {Fabric::kEfpga, 1, {}, 0.0}, {Fabric::kGeneralPurposeCpu, 4, {}, 0.0},
                          {Fabric::kAsip, 4, {}, 0.0},  {Fabric::kDsp, 4, {}, 0.0}};
  PlatformDesc p(pes, noc::TopologyKind::kFatTree, tech::node_90nm());
  const auto m = heft_mapping(g, p);
  EXPECT_TRUE(evaluate_mapping(g, p, m).feasible);
}

TEST(Heft, PrefersShorterMakespanThanWorstRandom) {
  const auto g = soc::apps::mjpeg_task_graph();
  const auto p = cpu_asip_platform(6);
  const auto heft = evaluate_mapping(g, p, heft_mapping(g, p));
  sim::Rng rng(5);
  double worst_random = 0.0;
  for (int i = 0; i < 5; ++i) {
    worst_random = std::max(
        worst_random,
        evaluate_mapping(g, p, random_mapping(g, p, rng)).pipeline_latency);
  }
  EXPECT_LE(heft.pipeline_latency, worst_random);
}

// ------------------------------------------------------------------ annealer ---

TEST(Anneal, NeverWorseThanGreedyStart) {
  const auto g = soc::apps::wlan_task_graph();
  const auto p = cpu_asip_platform(8);
  const ObjectiveWeights w;
  const double greedy = evaluate_mapping(g, p, greedy_mapping(g, p, w), w).objective;
  AnnealConfig ac;
  ac.iterations = 2000;
  const double anneal = evaluate_mapping(g, p, anneal_mapping(g, p, w, ac), w).objective;
  EXPECT_LE(anneal, greedy + 1e-12);
}

TEST(Anneal, ExternalRngOverloadMatchesSeededForm) {
  const auto g = soc::apps::ipv4_task_graph();
  const auto p = cpu_asip_platform(6);
  AnnealConfig ac;
  ac.iterations = 1000;
  ac.seed = 7;
  sim::Rng rng(7);
  EXPECT_EQ(anneal_mapping(g, p, {}, ac), anneal_mapping(g, p, {}, ac, rng));
}

// ------------------------------------------------------------ DSE threading ---

TEST(DseMappers, BitIdenticalAcrossThreadsForEveryRegisteredMapper) {
  DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  space.fabrics = {Fabric::kAsip};
  AnnealConfig quick;
  quick.iterations = 300;
  const auto graph = soc::apps::ipv4_task_graph();
  const auto& node = tech::node_90nm();

  for (const auto& name : registered_mappers()) {
    SCOPED_TRACE(name);
    DseConfig serial_cfg;
    serial_cfg.num_threads = 1;
    serial_cfg.mapper = name;
    const auto serial = run_session(graph, space, node, {}, quick, serial_cfg);
    ASSERT_EQ(serial.size(), 4u);
    for (const auto& pt : serial) EXPECT_EQ(pt.mapper, name);

    DseConfig parallel_cfg;
    parallel_cfg.num_threads = 3;
    parallel_cfg.mapper = name;
    const auto parallel = run_session(graph, space, node, {}, quick, parallel_cfg);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].mapping_cost.objective,
                serial[i].mapping_cost.objective);
      EXPECT_EQ(parallel[i].mapping_cost.bottleneck_cycles,
                serial[i].mapping_cost.bottleneck_cycles);
      EXPECT_EQ(parallel[i].mapping_cost.energy_pj_per_item,
                serial[i].mapping_cost.energy_pj_per_item);
      EXPECT_EQ(parallel[i].pareto_optimal, serial[i].pareto_optimal);
    }
  }
}

TEST(DseMappers, UnknownMapperThrows) {
  DseSpace space;
  space.pe_counts = {4};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus};
  space.fabrics = {Fabric::kAsip};
  DseConfig cfg;
  cfg.mapper = "no-such-strategy";
  EXPECT_THROW(run_session(soc::apps::ipv4_task_graph(), space, tech::node_90nm(),
                       {}, {}, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace soc::core
