// The always-on DSE service (soc::svc) and its socket transport
// (tlm::SocketTransport): the streamed result of every sweep must be
// byte-identical to a single-machine DseSession of the same request —
// over the in-process loopback AND over a real TCP connection, with any
// number of concurrent clients — and the daemon's multiplexing contract
// (bounded admission, typed busy refusal, prompt cancel reclamation,
// per-client fairness) must hold under load. Everything here binds only
// ephemeral loopback ports and finishes fast enough for the `quick`
// label, so the sanitizer CI jobs race all of it.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "soc/core/dse_session.hpp"
#include "soc/core/dse_wire.hpp"
#include "soc/svc/dse_client.hpp"
#include "soc/svc/dse_service.hpp"
#include "soc/tlm/loopback.hpp"
#include "soc/tlm/socket.hpp"

namespace soc::svc {
namespace {

using core::AnnealConfig;
using core::DseConfig;
using core::DsePoint;
using core::DseProblem;
using core::DseSession;
using core::DseSpace;
using core::ObjectiveSpace;
using core::ObjectiveWeights;
using core::ScenarioSet;
using core::SweepRequest;
using core::TaskGraph;
using core::TaskNode;

// ------------------------------------------------------------- fixtures ---

TaskGraph small_pipeline() {
  TaskGraph g("svc-pipe");
  TaskNode a;
  a.name = "src";
  a.work_ops = 150.0;
  TaskNode b;
  b.name = "filter";
  b.work_ops = 300.0;
  TaskNode c;
  c.name = "route";
  c.work_ops = 220.0;
  TaskNode d;
  d.name = "sink";
  d.work_ops = 90.0;
  const int ia = g.add_node(std::move(a));
  const int ib = g.add_node(std::move(b));
  const int ic = g.add_node(std::move(c));
  const int id = g.add_node(std::move(d));
  g.add_edge({ia, ib, 8.0});
  g.add_edge({ib, ic, 4.0});
  g.add_edge({ic, id, 4.0});
  g.add_edge({ia, ic, 2.0});
  return g;
}

TaskGraph second_scenario() {
  TaskGraph g("svc-alt");
  TaskNode a;
  a.name = "in";
  a.work_ops = 80.0;
  TaskNode b;
  b.name = "crunch";
  b.work_ops = 400.0;
  TaskNode c;
  c.name = "out";
  c.work_ops = 120.0;
  const int ia = g.add_node(std::move(a));
  const int ib = g.add_node(std::move(b));
  const int ic = g.add_node(std::move(c));
  g.add_edge({ia, ib, 6.0});
  g.add_edge({ib, ic, 3.0});
  return g;
}

/// A complete small sweep request; `alt_scenario` adds a second scenario
/// graph (doubles the grid and exercises per-scenario fronts on the wire).
SweepRequest small_request(bool alt_scenario = false) {
  SweepRequest req;
  req.problem = DseProblem{small_pipeline(), ObjectiveSpace::default_space(),
                           ObjectiveWeights{}, tech::node_90nm()};
  req.scenarios = alt_scenario
                      ? ScenarioSet{small_pipeline(), second_scenario()}
                      : ScenarioSet{small_pipeline()};
  req.space.pe_counts = {4, 8};
  req.space.thread_counts = {2};
  req.space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  req.space.fabrics = {tech::Fabric::kAsip};
  req.anneal.iterations = 250;
  return req;
}

/// A sweep slow enough to still be running when a follow-up protocol
/// message (busy probe, cancel) reaches the service: heavy anneal budget,
/// and the cross-sweep eval memo off so earlier tests in this process
/// can't turn its evaluations into instant cache hits.
SweepRequest slow_request(bool alt_scenario = false) {
  SweepRequest req = small_request(alt_scenario);
  req.anneal.iterations = 25000;
  req.config.use_eval_cache = false;
  return req;
}

/// Runs `request` through a local DseSession — the ground truth every
/// streamed sweep must reproduce byte-for-byte.
struct SessionRef {
  std::vector<DsePoint> points;
  std::vector<std::size_t> front;
  std::vector<std::vector<std::size_t>> scenario_fronts;
  std::size_t grid_points = 0;
  std::vector<std::size_t> extra_parents;
};

SessionRef run_reference(const SweepRequest& req) {
  DseSession session(req.problem, req.scenarios, req.space, req.anneal,
                     req.config);
  SessionRef ref;
  ref.points = session.run();
  ref.front = session.front();
  ref.scenario_fronts = session.scenario_fronts();
  ref.grid_points = session.grid_point_count();
  for (std::size_t i = ref.grid_points; i < ref.points.size(); ++i) {
    ref.extra_parents.push_back(session.extra_parent(i));
  }
  return ref;
}

/// Byte-identity through the canonical codec: equal word streams prove
/// every DsePoint field (doubles bit-for-bit) matches.
void expect_result_identical(const SweepResult& got, const SessionRef& want,
                             const std::string& what) {
  ASSERT_EQ(got.points.size(), want.points.size()) << what;
  for (std::size_t i = 0; i < got.points.size(); ++i) {
    EXPECT_EQ(core::marshal_point(got.points[i]),
              core::marshal_point(want.points[i]))
        << what << ": point " << i << " diverged";
  }
  EXPECT_EQ(got.front, want.front) << what;
  EXPECT_EQ(got.scenario_fronts, want.scenario_fronts) << what;
  EXPECT_EQ(got.grid_points, want.grid_points) << what;
  EXPECT_EQ(got.extra_parents, want.extra_parents) << what;
}

// ----------------------------------------------------- socket transport ---

/// Test endpoint: records every payload it receives, in arrival order.
class Recorder final : public tlm::Endpoint {
 public:
  void handle(const tlm::Transaction& t, tlm::CompletionFn done) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      payloads_.push_back(t.payload);
      initiators_.push_back(t.initiator);
    }
    cv_.notify_all();
    if (done) done(t);
  }

  /// Blocks until `n` messages have arrived (test-deadline bounded).
  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return payloads_.size() >= n; });
  }

  std::vector<std::vector<std::uint32_t>> payloads() {
    std::lock_guard<std::mutex> lk(mu_);
    return payloads_;
  }
  std::vector<noc::TerminalId> initiators() {
    std::lock_guard<std::mutex> lk(mu_);
    return initiators_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::vector<std::uint32_t>> payloads_;
  std::vector<noc::TerminalId> initiators_;
};

TEST(SocketTransport, EphemeralPortAndBidirectionalFifo) {
  auto server = tlm::SocketTransport::listen(0);
  ASSERT_GT(server->port(), 0) << "ephemeral bind must report a real port";
  auto client = tlm::SocketTransport::connect("127.0.0.1", server->port());

  Recorder server_rec;
  Recorder client_rec;
  server->attach(0, server_rec);
  client->attach(1, client_rec);

  // Client -> server: 100 ordered messages from one sender must arrive in
  // send order (per-sender FIFO is what the service protocol rests on).
  for (std::uint32_t i = 0; i < 100; ++i) {
    client->message(1, 0, {i, i * 3u});
  }
  server_rec.wait_for(100);
  const auto inbound = server_rec.payloads();
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_EQ(inbound[i], (std::vector<std::uint32_t>{i, i * 3u})) << i;
    ASSERT_EQ(server_rec.initiators()[i], 1u) << i;
  }

  // Server -> client uses the route learned from the inbound frames.
  for (std::uint32_t i = 0; i < 10; ++i) {
    server->message(0, 1, {0xBEEF0000u + i});
  }
  client_rec.wait_for(10);
  EXPECT_EQ(client_rec.payloads()[9],
            (std::vector<std::uint32_t>{0xBEEF0009u}));

  // Wire metering counts every word of every frame, both directions.
  EXPECT_GE(server->words_on_wire(), 200u);
  EXPECT_GE(client->frames_sent(), 100u);
  EXPECT_GE(server->frames_received(), 100u);
  EXPECT_EQ(server->connection_count(), 1u);

  client->shutdown();
  server->shutdown();
}

TEST(SocketTransport, LargePayloadSurvivesFraming) {
  auto server = tlm::SocketTransport::listen(0);
  auto client = tlm::SocketTransport::connect("127.0.0.1", server->port());
  Recorder rec;
  server->attach(0, rec);
  client->attach(7, rec);  // unused; gives the client a local terminal

  // Big enough to straddle many TCP segments; a framing bug (partial
  // read/write, byte-order slip) scrambles the checksum pattern.
  std::vector<std::uint32_t> body(200000);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint32_t>(i * 2654435761u);
  }
  client->message(7, 0, body);
  rec.wait_for(1);
  EXPECT_EQ(rec.payloads()[0], body);

  client->shutdown();
  server->shutdown();
}

TEST(SocketTransport, ShutdownFlushesPendingWrites) {
  auto server = tlm::SocketTransport::listen(0);
  auto client = tlm::SocketTransport::connect("127.0.0.1", server->port());
  Recorder rec;
  server->attach(0, rec);
  client->attach(1, rec);
  for (std::uint32_t i = 0; i < 500; ++i) {
    client->message(1, 0, {i});
  }
  // Immediate shutdown: the writer must drain its outbox before closing,
  // so every queued frame still reaches the server.
  client->shutdown();
  rec.wait_for(500);
  const auto got = rec.payloads();
  ASSERT_EQ(got.size(), 500u);
  for (std::uint32_t i = 0; i < 500; ++i) {
    ASSERT_EQ(got[i][0], i) << "frame order broke at " << i;
  }
  server->shutdown();
}

TEST(SocketTransport, ConnectToDeadPortFails) {
  // Grab a port that is then closed again, so nothing listens on it.
  std::uint16_t dead_port = 0;
  {
    auto probe = tlm::SocketTransport::listen(0);
    dead_port = probe->port();
    probe->shutdown();
  }
  EXPECT_THROW(tlm::SocketTransport::connect("127.0.0.1", dead_port, 200),
               std::runtime_error);
}

// --------------------------------------------- service over the loopback ---

TEST(DseService, StreamedSweepIsByteIdenticalToSession) {
  const SweepRequest req = small_request(/*alt_scenario=*/true);
  const SessionRef ref = run_reference(req);

  tlm::LoopbackTransport bus;
  DseService service(bus, kServiceTerminal);
  DseClient client(bus, 1);

  std::atomic<std::uint64_t> streamed{0};
  const std::uint32_t id = client.submit(
      req, [&](std::uint64_t, const DsePoint&, bool) { ++streamed; });
  const SweepResult res = client.wait(id);

  expect_result_identical(res, ref, "loopback sweep");
  EXPECT_FALSE(res.cancelled);
  // Streaming really happened: one observer call per grid point.
  EXPECT_EQ(streamed.load(), ref.grid_points);
  EXPECT_EQ(res.points_streamed, ref.grid_points);
  EXPECT_GT(res.wall_ms, 0.0);

  service.stop();
  bus.shutdown();
}

TEST(DseService, ValidatedSweepOverlaysStageTwoPoints) {
  SweepRequest req = small_request();
  req.config.validate_pareto = true;
  const SessionRef ref = run_reference(req);

  tlm::LoopbackTransport bus;
  DseService service(bus, kServiceTerminal);
  DseClient client(bus, 1);

  std::atomic<std::uint64_t> validated_seen{0};
  const std::uint32_t id = client.submit(
      req, [&](std::uint64_t, const DsePoint&, bool validated) {
        if (validated) ++validated_seen;
      });
  const SweepResult res = client.wait(id);

  expect_result_identical(res, ref, "validated sweep");
  // Every front point was re-streamed as a stage-2 overlay.
  EXPECT_EQ(validated_seen.load(), ref.front.size());

  service.stop();
  bus.shutdown();
}

TEST(DseService, MappingFrontExtrasTravelWithTheirParents) {
  SweepRequest req = small_request();
  req.config.mapper = "nsga2";
  req.config.mapping_fronts = true;
  req.anneal.iterations = 60;  // nsga2 budget: keep the quick label quick
  const SessionRef ref = run_reference(req);
  ASSERT_GT(ref.extra_parents.size(), 0u)
      << "fixture must actually produce mapping-front extras";

  tlm::LoopbackTransport bus;
  DseService service(bus, kServiceTerminal);
  DseClient client(bus, 1);
  const SweepResult res = client.wait(client.submit(req));
  expect_result_identical(res, ref, "map-fronts sweep");

  service.stop();
  bus.shutdown();
}

TEST(DseService, BoundedAdmissionRefusesWithTypedBusy) {
  DseServiceConfig cfg;
  cfg.pool_threads = 1;
  cfg.max_active = 1;
  cfg.max_queued = 0;
  tlm::LoopbackTransport bus;
  DseService service(bus, kServiceTerminal, cfg);
  DseClient client(bus, 1);

  const std::uint32_t first = client.submit(slow_request(true));
  bool refused = false;
  try {
    client.submit(small_request());
  } catch (const ServiceBusy& e) {
    refused = true;
    EXPECT_EQ(e.active, 1u);
    EXPECT_EQ(e.queued, 0u);
    EXPECT_EQ(e.max_active, 1u);
    EXPECT_EQ(e.max_queued, 0u);
    EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos);
  }
  EXPECT_TRUE(refused) << "second submit must be refused, not queued";
  EXPECT_EQ(service.stats().rejected_busy, 1u);

  // The refusal was about capacity, not the sweep: the admitted one
  // still completes and the freed slot admits a retry.
  (void)client.wait(first);
  const std::uint32_t retry = client.submit(small_request());
  (void)client.wait(retry);
  EXPECT_EQ(service.stats().completed, 2u);

  service.stop();
  bus.shutdown();
}

TEST(DseService, CancelFreesTheSlotAndAdmitsTheQueuedSweep) {
  DseServiceConfig cfg;
  cfg.pool_threads = 1;
  cfg.max_active = 1;
  cfg.max_queued = 1;
  tlm::LoopbackTransport bus;
  DseService service(bus, kServiceTerminal, cfg);
  DseClient client(bus, 1);

  // Sweep A occupies the only active slot; cancel it from its own
  // observer after the first streamed point.
  std::atomic<std::uint32_t> id_a{0};
  std::atomic<bool> cancel_sent{false};
  const std::uint32_t a = client.submit(
      slow_request(true), [&](std::uint64_t, const DsePoint&, bool) {
        if (!cancel_sent.exchange(true)) client.cancel(id_a.load());
      });
  id_a.store(a);
  // Sweep B lands in the queue behind it.
  const std::uint32_t b = client.submit(small_request());

  const SweepResult res_a = client.wait(a);
  EXPECT_TRUE(res_a.cancelled);
  EXPECT_LT(res_a.points_evaluated, 16u)
      << "cancel must stop the sweep before it finishes its 16-point grid";

  // The acceptance gate: the queued sweep must now run to completion —
  // and still be byte-identical to the local session.
  const SweepResult res_b = client.wait(b);
  expect_result_identical(res_b, run_reference(small_request()),
                          "post-cancel queued sweep");
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(service.active_sweeps(), 0u);
  EXPECT_EQ(service.queued_sweeps(), 0u);

  service.stop();
  bus.shutdown();
}

TEST(DseService, CancellingAQueuedSweepNeverRunsIt) {
  DseServiceConfig cfg;
  cfg.pool_threads = 1;
  cfg.max_active = 1;
  cfg.max_queued = 1;
  tlm::LoopbackTransport bus;
  DseService service(bus, kServiceTerminal, cfg);
  DseClient client(bus, 1);

  const std::uint32_t a = client.submit(slow_request(true));
  const std::uint32_t b = client.submit(small_request());
  client.cancel(b);
  const SweepResult res_b = client.wait(b);
  EXPECT_TRUE(res_b.cancelled);
  EXPECT_EQ(res_b.points_evaluated, 0u);
  (void)client.wait(a);
  EXPECT_EQ(service.stats().completed, 1u);

  service.stop();
  bus.shutdown();
}

TEST(DseService, InvalidRequestIsRefusedWithError) {
  tlm::LoopbackTransport bus;
  DseService service(bus, kServiceTerminal);
  DseClient client(bus, 1);

  SweepRequest bad = small_request();
  bad.space.pe_counts = {0};  // the session constructor rejects this
  EXPECT_THROW(client.submit(bad), std::runtime_error);
  EXPECT_EQ(service.stats().errors, 1u);
  EXPECT_EQ(service.stats().accepted, 0u);

  // The service survives the bad request and serves the next one.
  const SweepResult res = client.wait(client.submit(small_request()));
  EXPECT_FALSE(res.cancelled);

  service.stop();
  bus.shutdown();
}

TEST(DseService, BrokerRegistrationResolvesByInterfaceName) {
  tlm::LoopbackTransport bus;
  dsoc::Broker broker(bus);
  DseService service(broker, bus, kServiceTerminal);
  const dsoc::ObjectRef ref = broker.resolve(kServiceInterface);
  EXPECT_EQ(ref.terminal, kServiceTerminal);
  EXPECT_EQ(ref.id, kServiceObjectId);

  DseClient client(bus, 1, ref.terminal);
  const SweepResult res = client.wait(client.submit(small_request()));
  expect_result_identical(res, run_reference(small_request()),
                          "broker-resolved sweep");

  service.stop();
  bus.shutdown();
}

// ------------------------------------------- the acceptance: real TCP ---

TEST(DseService, ConcurrentTcpClientsReceiveByteIdenticalFronts) {
  // N concurrent clients over a real socket, each with a different sweep,
  // all multiplexed onto one shared pool — every streamed front must be
  // byte-identical to that client's own local DseSession run.
  auto server = tlm::SocketTransport::listen(0);
  DseServiceConfig cfg;
  cfg.max_active = 3;
  DseService service(*server, kServiceTerminal, cfg);

  const SweepRequest requests[3] = {small_request(), small_request(true), [] {
                                      SweepRequest r = small_request();
                                      r.config.validate_pareto = true;
                                      return r;
                                    }()};
  SessionRef refs[3];
  for (int i = 0; i < 3; ++i) refs[i] = run_reference(requests[i]);

  std::vector<std::thread> workers;
  std::string failures[3];
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      try {
        auto bus = tlm::SocketTransport::connect("127.0.0.1", server->port());
        DseClient client(*bus, static_cast<noc::TerminalId>(i + 1));
        std::atomic<std::uint64_t> streamed{0};
        const std::uint32_t id = client.submit(
            requests[i],
            [&](std::uint64_t, const DsePoint&, bool) { ++streamed; });
        const SweepResult res = client.wait(id);
        expect_result_identical(res, refs[i],
                                "tcp client " + std::to_string(i));
        if (streamed.load() == 0) failures[i] = "no streamed points";
        bus->shutdown();
      } catch (const std::exception& e) {
        failures[i] = e.what();
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(failures[i], "") << "tcp client " << i;
  }

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.errors, 0u);
  service.stop();
  server->shutdown();
}

TEST(DseService, TcpCancelReclaimsTheSlotAcrossClients) {
  // Client 1 cancels mid-sweep over TCP; client 2's queued sweep must
  // start, finish, and match its local session.
  auto server = tlm::SocketTransport::listen(0);
  DseServiceConfig cfg;
  cfg.pool_threads = 1;
  cfg.max_active = 1;
  cfg.max_queued = 1;
  DseService service(*server, kServiceTerminal, cfg);

  auto bus1 = tlm::SocketTransport::connect("127.0.0.1", server->port());
  DseClient c1(*bus1, 1);
  std::atomic<std::uint32_t> id1{0};
  std::atomic<bool> sent{false};
  const std::uint32_t a = c1.submit(
      slow_request(true), [&](std::uint64_t, const DsePoint&, bool) {
        if (!sent.exchange(true)) c1.cancel(id1.load());
      });
  id1.store(a);

  auto bus2 = tlm::SocketTransport::connect("127.0.0.1", server->port());
  DseClient c2(*bus2, 2);
  const std::uint32_t b = c2.submit(small_request());

  EXPECT_TRUE(c1.wait(a).cancelled);
  expect_result_identical(c2.wait(b), run_reference(small_request()),
                          "tcp post-cancel sweep");

  service.stop();
  bus1->shutdown();
  bus2->shutdown();
  server->shutdown();
}

}  // namespace
}  // namespace soc::svc
