// Topology construction, routing-table and hop-count properties for every
// member of the paper's "bus, ring, tree to full-crossbar" range.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "soc/noc/topologies.hpp"

namespace soc::noc {
namespace {

std::string sanitize(std::string s) {
  std::replace(s.begin(), s.end(), '-', '_');
  return s;
}

// Parameterized over (kind, terminal count): structural invariants that
// every topology must satisfy.
class TopologyInvariants
    : public ::testing::TestWithParam<std::tuple<TopologyKind, int>> {};

TEST_P(TopologyInvariants, EveryPairIsRoutable) {
  const auto [kind, n] = GetParam();
  const auto topo = make_topology(kind, n);
  EXPECT_EQ(topo->terminal_count(), n);
  for (TerminalId s = 0; s < static_cast<TerminalId>(n); ++s) {
    for (TerminalId d = 0; d < static_cast<TerminalId>(n); ++d) {
      if (s == d) continue;
      // Walking the routing tables terminates at the destination.
      const int h = topo->hops_between(s, d);
      EXPECT_GT(h, 0) << to_string(kind) << " " << s << "->" << d;
      EXPECT_LE(h, topo->diameter_hops());
    }
  }
}

TEST_P(TopologyInvariants, SelfHopsZero) {
  const auto [kind, n] = GetParam();
  const auto topo = make_topology(kind, n);
  for (TerminalId t = 0; t < static_cast<TerminalId>(n); ++t) {
    EXPECT_EQ(topo->hops_between(t, t), 0);
  }
}

TEST_P(TopologyInvariants, AverageHopsConsistent) {
  const auto [kind, n] = GetParam();
  const auto topo = make_topology(kind, n);
  double sum = 0.0;
  int pairs = 0;
  for (TerminalId s = 0; s < static_cast<TerminalId>(n); ++s) {
    for (TerminalId d = 0; d < static_cast<TerminalId>(n); ++d) {
      if (s == d) continue;
      sum += topo->hops_between(s, d);
      ++pairs;
    }
  }
  EXPECT_NEAR(topo->average_hops(), sum / pairs, 1e-9) << to_string(kind);
}

TEST_P(TopologyInvariants, EjectRouteAtAttachRouter) {
  const auto [kind, n] = GetParam();
  const auto topo = make_topology(kind, n);
  for (TerminalId t = 0; t < static_cast<TerminalId>(n); ++t) {
    EXPECT_EQ(topo->route(topo->attach_router(t), t), -1);
  }
}

TEST_P(TopologyInvariants, LinkEndpointsValid) {
  const auto [kind, n] = GetParam();
  const auto topo = make_topology(kind, n);
  for (const auto& l : topo->links()) {
    EXPECT_GE(l.from_router, 0);
    EXPECT_LT(l.from_router, topo->router_count());
    EXPECT_GE(l.to_router, 0);
    EXPECT_LT(l.to_router, topo->router_count());
    EXPECT_GT(l.bandwidth, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, TopologyInvariants,
    ::testing::Combine(
        ::testing::Values(TopologyKind::kBus, TopologyKind::kRing,
                          TopologyKind::kBinaryTree, TopologyKind::kFatTree,
                          TopologyKind::kMesh2D, TopologyKind::kTorus2D,
                          TopologyKind::kCrossbar),
        ::testing::Values(4, 16, 32)),
    [](const auto& info) {
      return sanitize(std::string(to_string(std::get<0>(info.param))) + "_" +
                      std::to_string(std::get<1>(info.param)));
    });

// ------------------------------------------------------- per-kind facts ---

TEST(BusTopology, ConstantHopsAndSingleBottleneck) {
  const auto topo = make_bus(16);
  // NI -> entry -> exit -> NI = 3 hops for every pair.
  EXPECT_EQ(topo->diameter_hops(), 3);
  EXPECT_NEAR(topo->average_hops(), 3.0, 1e-9);
}

TEST(RingTopology, DiameterIsHalfN) {
  EXPECT_EQ(make_ring(16)->diameter_hops(), 8);
  EXPECT_EQ(make_ring(15)->diameter_hops(), 7);
  EXPECT_EQ(make_ring(4)->diameter_hops(), 2);
}

TEST(RingTopology, ShortestDirectionChosen) {
  const auto topo = make_ring(8);
  EXPECT_EQ(topo->hops_between(0, 1), 1);
  EXPECT_EQ(topo->hops_between(0, 7), 1);  // wraps backwards
  EXPECT_EQ(topo->hops_between(0, 4), 4);
}

TEST(TreeTopology, DiameterIsTwiceDepth) {
  // 16 leaves -> depth 4 -> corner-to-corner 8.
  EXPECT_EQ(make_binary_tree(16)->diameter_hops(), 8);
  EXPECT_EQ(make_fat_tree(16)->diameter_hops(), 8);
}

TEST(TreeTopology, NonPowerOfTwoUsesNextFullTree) {
  // 12 terminals populate the first 12 leaves of a 16-leaf tree: same
  // depth, so same diameter, and platform terminal counts (PEs + memories
  // + sinks) need not be exact powers of two.
  EXPECT_NO_THROW(make_binary_tree(8));
  const auto t12 = make_binary_tree(12);
  EXPECT_EQ(t12->terminal_count(), 12);
  EXPECT_EQ(t12->router_count(), 31);  // 16-leaf full tree
  EXPECT_EQ(t12->diameter_hops(), 8);
  EXPECT_NO_THROW(make_fat_tree(7));
  EXPECT_THROW(make_binary_tree(0), std::invalid_argument);
}

TEST(TreeTopology, FatTreeRootLinksWider) {
  const auto thin = make_binary_tree(16);
  const auto fat = make_fat_tree(16);
  EXPECT_GT(fat->total_link_bandwidth(), thin->total_link_bandwidth());
  double max_bw = 0.0;
  for (const auto& l : fat->links()) max_bw = std::max(max_bw, l.bandwidth);
  EXPECT_DOUBLE_EQ(max_bw, 8.0);  // root link carries half the leaves
}

TEST(MeshTopology, ManhattanDistances) {
  const auto topo = make_mesh(16);  // 4x4
  EXPECT_EQ(topo->hops_between(0, 3), 3);    // same row
  EXPECT_EQ(topo->hops_between(0, 12), 3);   // same column
  EXPECT_EQ(topo->hops_between(0, 15), 6);   // corner to corner
  EXPECT_EQ(topo->diameter_hops(), 6);
}

TEST(TorusTopology, WraparoundShortensPaths) {
  const auto mesh = make_mesh(16);
  const auto torus = make_torus(16);
  EXPECT_LT(torus->diameter_hops(), mesh->diameter_hops());
  EXPECT_EQ(torus->hops_between(0, 12), 1);  // wrap in the column
}

TEST(CrossbarTopology, AlwaysTwoHops) {
  const auto topo = make_crossbar(32);
  EXPECT_EQ(topo->diameter_hops(), 2);
  EXPECT_NEAR(topo->average_hops(), 2.0, 1e-9);
}

TEST(TopologyOrdering, AverageHopsRingVsMeshVsCrossbar) {
  // For large N: crossbar constant, mesh grows as sqrt(N), ring as N.
  const int n = 64;
  const auto ring = make_ring(n);
  const auto mesh = make_mesh(n);
  const auto xbar = make_crossbar(n);
  EXPECT_GT(ring->average_hops(), mesh->average_hops());
  EXPECT_GT(mesh->average_hops(), xbar->average_hops());
}

TEST(TopologyFactory, NamesRoundTrip) {
  for (const auto k :
       {TopologyKind::kBus, TopologyKind::kRing, TopologyKind::kBinaryTree,
        TopologyKind::kFatTree, TopologyKind::kMesh2D, TopologyKind::kTorus2D,
        TopologyKind::kCrossbar}) {
    const auto topo = make_topology(k, 16);
    EXPECT_EQ(topo->name(), to_string(k));
  }
}

TEST(TopologyValidation, RejectsBadParameters) {
  EXPECT_THROW(make_mesh(0), std::invalid_argument);
  EXPECT_THROW(make_ring(-1), std::invalid_argument);
}

}  // namespace
}  // namespace soc::noc
