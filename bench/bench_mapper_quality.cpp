// Ground-truth mapper quality. R1: per-heuristic optimality gap against the
// ExactMapper branch-and-bound baseline on a seeded small-graph corpus
// (scenario-generator shape classes x kind/capacity constraints on/off),
// with ns/mapping throughput per strategy. R2: NSGA-II mapping-front
// hypervolume against the single-solution strategies under a shared
// reference point. R3: NSGA-II fronts driven through DseSession's
// mapping_fronts stage must be bit-identical across thread counts 1/3/0
// with the EvalCache on and off. Emits BENCH_mapper_quality.json (schema
// documented in README.md); the exit code gates every verdict, and CTest
// runs `--quick` as test bench.mapper_quality_quick.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/exact_mapper.hpp"
#include "soc/core/mapper.hpp"
#include "soc/core/mapping.hpp"
#include "soc/core/nsgaii_mapper.hpp"
#include "soc/core/objective_space.hpp"
#include "soc/core/scenario.hpp"
#include "soc/sim/rng.hpp"

using namespace soc;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Heterogeneous CPU+ASIP pool for the unconstrained corpus half.
core::PlatformDesc cpu_asip_platform(int pes) {
  std::vector<core::PeDesc> descs;
  for (int i = 0; i < pes; ++i) {
    descs.push_back(core::PeDesc{
        i % 2 ? tech::Fabric::kGeneralPurposeCpu : tech::Fabric::kAsip, 4, {},
        0.0});
  }
  return core::PlatformDesc(std::move(descs), noc::TopologyKind::kMesh2D,
                            tech::node_90nm());
}

/// Kind-striped, capacity-limited pool for the constrained corpus half.
core::PlatformDesc striped_platform(int pes, int groups, double capacity) {
  std::vector<core::PeDesc> descs;
  for (int i = 0; i < pes; ++i) {
    core::PeDesc d{tech::Fabric::kAsip, 4, {}, 0.0};
    if (groups > 0) d.compatible_kinds = {i % groups};
    d.capacity = capacity;
    descs.push_back(std::move(d));
  }
  return core::PlatformDesc(std::move(descs), noc::TopologyKind::kMesh2D,
                            tech::node_90nm());
}

/// One corpus instance: a seeded small scenario graph plus the platform and
/// constraint policy it is mapped under.
struct Instance {
  core::TaskGraph graph;
  core::PlatformDesc platform;
  core::MappingConstraints constraints;
  bool constrained;
};

/// Seeded corpus: shape classes x constraints on/off x per_class instances,
/// every graph within the exact mapper's node budget (depth 3 x width 3).
std::vector<Instance> build_corpus(int per_class) {
  const core::ScenarioGenerator gen(0xdac03ULL);
  std::vector<Instance> corpus;
  for (const bool constrained : {false, true}) {
    for (const core::ScenarioShape shape :
         {core::ScenarioShape::kLayered, core::ScenarioShape::kSeriesParallel,
          core::ScenarioShape::kFanInHeavy}) {
      for (int i = 0; i < per_class; ++i) {
        core::ScenarioSpec spec;
        spec.shape = shape;
        spec.depth = 3;
        spec.width = 3;
        spec.kinds = constrained ? 2 : 1;
        spec.demand_min = 0.5;
        spec.demand_max = 2.0;
        spec.name = "mq";
        corpus.push_back(Instance{
            gen.generate(spec, i),
            constrained ? striped_platform(5, 2, 8.0) : cpu_asip_platform(5),
            constrained ? core::MappingConstraints{}
                        : core::MappingConstraints::none(),
            constrained});
      }
    }
  }
  return corpus;
}

/// 2D hypervolume (minimization) of the (x, y) staircase against ref
/// (rx, ry); points outside the reference box contribute nothing.
double hypervolume_2d(std::vector<std::pair<double, double>> pts, double rx,
                      double ry) {
  std::sort(pts.begin(), pts.end());
  double area = 0.0;
  double best_y = ry;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double x = std::min(pts[i].first, rx);
    const double y = std::min(pts[i].second, best_y);
    double next_x = rx;
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (pts[j].second < y) {
        next_x = std::min(pts[j].first, rx);
        break;
      }
    }
    if (next_x > x) area += (next_x - x) * (ry - y);
    best_y = y;
  }
  return area;
}

/// 3D hypervolume (minimization) by z-slicing: sort by the energy axis and
/// integrate the 2D (bottleneck, comm) staircase area over each z slab.
double hypervolume_3d(const std::vector<core::MappingCost>& costs, double rx,
                      double ry, double rz) {
  std::vector<std::size_t> order(costs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs[a].energy_pj_per_item < costs[b].energy_pj_per_item;
  });
  double volume = 0.0;
  std::vector<std::pair<double, double>> slab;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const double z0 = costs[order[k]].energy_pj_per_item;
    if (z0 >= rz) break;
    slab.push_back({costs[order[k]].bottleneck_cycles,
                    costs[order[k]].comm_word_hops});
    const double z1 =
        k + 1 < order.size()
            ? std::min(costs[order[k + 1]].energy_pj_per_item, rz)
            : rz;
    if (z1 > z0) volume += hypervolume_2d(slab, rx, ry) * (z1 - z0);
  }
  return volume;
}

bool point_streams_identical(const std::vector<core::DsePoint>& a,
                             const std::vector<core::DsePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].mapping != b[i].mapping ||
        a[i].mapping_cost.objective != b[i].mapping_cost.objective ||
        a[i].mapping_cost.bottleneck_cycles !=
            b[i].mapping_cost.bottleneck_cycles ||
        a[i].mapping_cost.energy_pj_per_item !=
            b[i].mapping_cost.energy_pj_per_item ||
        a[i].pareto_optimal != b[i].pareto_optimal) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::JsonReport json("mapper_quality");

  const int per_class = quick ? 9 : 16;
  const std::vector<Instance> corpus = build_corpus(per_class);
  const std::vector<std::string> heuristics = {"anneal", "greedy", "heft",
                                               "random"};
  core::AnnealConfig ac;
  ac.iterations = quick ? 400 : 2'000;

  bench::title("R1", "Optimality gap vs the branch-and-bound ground truth");
  bench::note("gap = (heuristic - optimal) / optimal objective; corpus =");
  bench::note("3 scenario shapes x constraints on/off, <= 9 tasks, 5 PEs");
  bench::rule();

  const core::ExactMapper exact;
  const core::ObjectiveWeights weights;
  std::vector<core::MappingFrontPoint> optima;
  optima.reserve(corpus.size());
  auto t0 = std::chrono::steady_clock::now();
  for (const Instance& inst : corpus) {
    optima.push_back(
        exact.solve(inst.graph, inst.platform, weights, inst.constraints));
  }
  const double exact_ms = ms_since(t0);

  struct GapStats {
    double sum = 0.0;
    double max = 0.0;
    double min = 0.0;
    int optimal_hits = 0;
    double ms = 0.0;
  };
  std::map<std::string, GapStats> stats;
  for (const std::string& name : heuristics) {
    GapStats& gs = stats[name];
    const auto mapper = core::make_mapper(name, ac);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const Instance& inst = corpus[i];
      ac.seed = 0x9d5ULL + i;
      sim::Rng rng(ac.seed);
      t0 = std::chrono::steady_clock::now();
      const core::Mapping m = mapper->map(inst.graph, inst.platform, weights,
                                          rng, inst.constraints);
      gs.ms += ms_since(t0);
      const core::MappingCost mc = core::evaluate_mapping(
          inst.graph, inst.platform, m, weights, inst.constraints);
      const double opt = optima[i].cost.objective;
      const double gap = (mc.objective - opt) / opt;
      gs.sum += gap;
      gs.max = std::max(gs.max, gap);
      gs.min = std::min(gs.min, gap);
      if (gap <= 1e-9) ++gs.optimal_hits;
    }
  }

  const double n = static_cast<double>(corpus.size());
  std::printf("  %zu instances | exact: %.2f ms/solve\n", corpus.size(),
              exact_ms / n);
  for (const std::string& name : heuristics) {
    const GapStats& gs = stats[name];
    std::printf("  %-7s mean gap %6.2f%% | max %6.2f%% | optimal %3d/%zu | "
                "%8.0f ns/mapping\n",
                name.c_str(), 1e2 * gs.sum / n, 1e2 * gs.max, gs.optimal_hits,
                corpus.size(), 1e6 * gs.ms / n);
  }
  bench::rule();
  bool gaps_nonnegative = true;
  for (const auto& [name, gs] : stats) gaps_nonnegative &= gs.min >= -1e-9;
  bench::verdict(gaps_nonnegative,
                 "no heuristic ever beats the exact optimum (gap >= 0 on "
                 "every instance)");
  const bool anneal_beats_greedy =
      stats["anneal"].sum <= stats["greedy"].sum + 1e-12;
  bench::verdict(anneal_beats_greedy,
                 "anneal's aggregate gap is no worse than greedy's");

  bench::title("R2", "NSGA-II mapping-front hypervolume vs single solutions");
  bench::note("3D volume dominated under a shared 1.1x-nadir reference");
  bench::note("point; NSGA-II seeds its population with greedy and HEFT");
  bench::rule();

  const core::NsgaiiMapper nsga(ac);
  double hv_nsga_sum = 0.0;
  double hv_greedy_sum = 0.0;
  double hv_heft_sum = 0.0;
  double hv_anneal_sum = 0.0;
  double front_size_sum = 0.0;
  double nsga_ms = 0.0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Instance& inst = corpus[i];
    ac.seed = 0x51aULL + i;
    sim::Rng rng(ac.seed);
    t0 = std::chrono::steady_clock::now();
    const auto front = nsga.map_front(inst.graph, inst.platform, weights, rng,
                                      inst.constraints);
    nsga_ms += ms_since(t0);
    front_size_sum += static_cast<double>(front.size());
    std::map<std::string, core::MappingCost> singles;
    for (const char* name : {"greedy", "heft", "anneal"}) {
      sim::Rng r2(0x3c3ULL + i);
      const core::Mapping m = core::make_mapper(name, ac)->map(
          inst.graph, inst.platform, weights, r2, inst.constraints);
      singles[name] = core::evaluate_mapping(inst.graph, inst.platform, m,
                                             weights, inst.constraints);
    }
    // Shared reference point: 1.1x the nadir over every feasible solution
    // in play (front members and the three single solutions).
    std::vector<core::MappingCost> all;
    for (const auto& fp : front) {
      if (fp.cost.feasible) all.push_back(fp.cost);
    }
    for (const auto& [name, mc] : singles) {
      if (mc.feasible) all.push_back(mc);
    }
    if (all.empty()) continue;  // nothing feasible: no volume to compare
    double rx = 0.0;
    double ry = 0.0;
    double rz = 0.0;
    for (const core::MappingCost& mc : all) {
      rx = std::max(rx, mc.bottleneck_cycles);
      ry = std::max(ry, mc.comm_word_hops);
      rz = std::max(rz, mc.energy_pj_per_item);
    }
    rx = 1.1 * rx + 1e-9;
    ry = 1.1 * ry + 1e-9;
    rz = 1.1 * rz + 1e-9;
    std::vector<core::MappingCost> front_costs;
    for (const auto& fp : front) {
      if (fp.cost.feasible) front_costs.push_back(fp.cost);
    }
    hv_nsga_sum += hypervolume_3d(front_costs, rx, ry, rz);
    const auto single_hv = [&](const char* name) {
      const core::MappingCost& mc = singles[name];
      return mc.feasible ? hypervolume_3d({mc}, rx, ry, rz) : 0.0;
    };
    hv_greedy_sum += single_hv("greedy");
    hv_heft_sum += single_hv("heft");
    hv_anneal_sum += single_hv("anneal");
  }
  std::printf("  mean front size %.1f | %8.0f ns/front\n", front_size_sum / n,
              1e6 * nsga_ms / n);
  std::printf("  mean hypervolume: nsga2 %.3g | greedy %.3g | heft %.3g | "
              "anneal %.3g\n",
              hv_nsga_sum / n, hv_greedy_sum / n, hv_heft_sum / n,
              hv_anneal_sum / n);
  bench::rule();
  const bool hv_covers_seeds = hv_nsga_sum >= hv_greedy_sum - 1e-9 &&
                               hv_nsga_sum >= hv_heft_sum - 1e-9;
  bench::verdict(hv_covers_seeds,
                 "the NSGA-II front dominates at least the volume of its "
                 "greedy and HEFT seeds");

  bench::title("R3", "Session mapping fronts: thread/cache determinism");
  bench::note("DseSession.mapping_fronts with nsga2 across num_threads");
  bench::note("1/3/0 and EvalCache on/off: one bit-identical point stream");
  bench::rule();

  core::ScenarioSpec spec;
  spec.depth = 3;
  spec.width = 3;
  spec.name = "mq-session";
  const core::TaskGraph session_graph =
      core::ScenarioGenerator(0xdac03ULL).generate(spec, 1);
  core::DseSpace space;
  space.pe_counts = {4, 8};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  space.fabrics = {tech::Fabric::kAsip};
  core::AnnealConfig sess_ac;
  sess_ac.iterations = quick ? 480 : 2'400;
  sess_ac.seed = 0x77aaULL;
  const core::DseProblem problem{session_graph,
                                 core::ObjectiveSpace::default_space(),
                                 {},
                                 tech::node_90nm()};
  std::vector<core::DsePoint> base;
  bool fronts_identical = true;
  std::size_t front_points = 0;
  for (const int threads : {1, 3, 0}) {
    for (const bool cache : {false, true}) {
      core::DseConfig dc;
      dc.mapper = "nsga2";
      dc.mapping_fronts = true;
      dc.num_threads = threads;
      dc.use_eval_cache = cache;
      core::DseSession session(problem, space, sess_ac, dc);
      std::vector<core::DsePoint> pts = session.run();
      if (base.empty()) {
        base = std::move(pts);
        front_points = base.size() - session.grid_point_count();
      } else {
        fronts_identical &= point_streams_identical(base, pts);
      }
    }
  }
  std::printf("  %zu grid points + %zu mapping-front extras x 6 runs\n",
              base.size() - front_points, front_points);
  bench::rule();
  bench::verdict(fronts_identical,
                 "all six runs produce one bit-identical point stream");

  json.add("corpus_instances", static_cast<long long>(corpus.size()));
  json.add("exact_ms_per_solve", exact_ms / n);
  for (const std::string& name : heuristics) {
    const GapStats& gs = stats[name];
    json.add("gap_mean_" + name, gs.sum / n);
    json.add("gap_max_" + name, gs.max);
    json.add("optimal_rate_" + name, static_cast<double>(gs.optimal_hits) / n);
    json.add("ns_per_mapping_" + name, 1e6 * gs.ms / n);
  }
  json.add("nsga2_ns_per_front", 1e6 * nsga_ms / n);
  json.add("nsga2_mean_front_size", front_size_sum / n);
  json.add("hv_mean_nsga2", hv_nsga_sum / n);
  json.add("hv_mean_greedy", hv_greedy_sum / n);
  json.add("hv_mean_heft", hv_heft_sum / n);
  json.add("hv_mean_anneal", hv_anneal_sum / n);
  json.add("session_front_extras", static_cast<long long>(front_points));
  json.add("gaps_nonnegative", gaps_nonnegative);
  json.add("anneal_gap_le_greedy", anneal_beats_greedy);
  json.add("hv_covers_seeds", hv_covers_seeds);
  json.add("fronts_bit_identical", fronts_identical);

  json.write();
  return gaps_nonnegative && anneal_beats_greedy && hv_covers_seeds &&
                 fronts_identical
             ? 0
             : 1;
}
