// Y1: Section 4's "statistical design, self-repair and various forms of
// redundancy" — Stapper yield vs die size per node, and how spare PEs in a
// homogeneous FPPA array buy back manufacturing yield.
#include "bench_util.hpp"
#include "soc/econ/yield.hpp"
#include "soc/platform/cost.hpp"
#include "soc/proc/multithread.hpp"

using namespace soc;

int main() {
  bench::title("Y1a", "Die yield vs area across the roadmap (launch-time D0)");
  bench::rule();
  std::printf("  %-8s %10s", "node", "D0/cm2");
  for (const double a : {50.0, 100.0, 200.0, 400.0}) std::printf(" %9.0fmm2", a);
  std::printf("\n");
  for (const auto& n : tech::roadmap()) {
    const auto p = econ::defect_params_for(n);
    std::printf("  %-8s %10.2f", n.name.c_str(), p.defects_per_cm2);
    for (const double a : {50.0, 100.0, 200.0, 400.0}) {
      std::printf(" %11.1f%%", 100.0 * econ::die_yield(a, p));
    }
    std::printf("\n");
  }
  bench::note("big nanometer dies yield badly at launch: the economic force");
  bench::note("behind Section 4's call for self-repair and redundancy");

  bench::title("Y1b", "Spare-PE repair on a 64-PE FPPA (50nm, 200mm2 die)");
  bench::rule();
  const auto& node = tech::node_50nm();
  const auto dp = econ::defect_params_for(node);
  // 64 required PEs; each ~1.9 mm2 (4-thread PE at 50nm); the rest of the
  // die (NoC + memories + IO) is non-redundant.
  const double pe_mm2 = platform::kPeMtx / node.density_mtx_mm2 *
                        soc::proc::mt_area_overhead(4);
  const int required = 64;
  const double rest_mm2 = 200.0 - required * pe_mm2;
  std::printf("  PE area %.2f mm2, non-redundant area %.1f mm2, D0 %.2f/cm2\n",
              pe_mm2, rest_mm2, dp.defects_per_cm2);
  std::printf("  %-9s %10s %14s %16s\n", "spares", "yield", "die cost $",
              "vs no-spare");
  double y0 = 0.0;
  double best_gain = 0.0;
  for (const int spares : {0, 1, 2, 4, 8}) {
    const int total = required + spares;
    const double die_mm2 = rest_mm2 + total * pe_mm2;
    const double y = econ::array_yield_with_spares(total, required, pe_mm2,
                                                   rest_mm2, dp);
    const double cost = econ::cost_per_good_die(die_mm2, y);
    if (spares == 0) y0 = y;
    best_gain = std::max(best_gain, y / y0);
    std::printf("  %-9d %9.1f%% %14.2f %15.2fx\n", spares, 100.0 * y, cost,
                y / y0);
  }
  bench::rule();
  bench::verdict(best_gain > 1.2,
                 "a handful of spare PEs buys >20% yield on a nanometer-scale "
                 "processor array");

  bench::title("Y1c", "Cost per good die: monolithic HW IP vs repairable array");
  bench::note("same 200mm2 die; monolithic logic has no repair granularity");
  bench::rule();
  const double mono_yield = econ::die_yield(200.0, dp);
  const double array_yield = econ::array_yield_with_spares(
      required + 4, required, pe_mm2, rest_mm2, dp);
  const double die_mm2 = rest_mm2 + (required + 4) * pe_mm2;
  std::printf("  monolithic: yield %.1f%% cost $%.2f\n", 100 * mono_yield,
              econ::cost_per_good_die(200.0, mono_yield));
  std::printf("  array+4sp : yield %.1f%% cost $%.2f\n", 100 * array_yield,
              econ::cost_per_good_die(die_mm2, array_yield));
  bench::verdict(array_yield > mono_yield,
                 "regular PE arrays are structurally easier to yield than "
                 "monolithic logic — another force toward MP-SoC platforms");
  return 0;
}
