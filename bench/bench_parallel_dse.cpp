// Parallel-executor speedup on the DSE hot path: the default DseSpace (128
// candidates, annealed mapping per candidate) swept serially and then
// sharded across every hardware thread. Verifies the tentpole contract —
// bit-identical points at any thread count — and reports the wall-clock
// ratio, which should approach the core count on a multi-core host.
#include <chrono>
#include <thread>

#include "bench_dse_util.hpp"
#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/objective_space.hpp"

using namespace soc;

namespace {

double run_timed(const core::TaskGraph& graph, const core::DseSpace& space,
                 const core::AnnealConfig& anneal, const core::DseConfig& config,
                 std::vector<core::DsePoint>& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = bench::run_session(graph, space, tech::node_90nm(), {}, anneal, config);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool identical(const std::vector<core::DsePoint>& a,
               const std::vector<core::DsePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].candidate.num_pes != b[i].candidate.num_pes ||
        a[i].candidate.threads_per_pe != b[i].candidate.threads_per_pe ||
        a[i].candidate.topology != b[i].candidate.topology ||
        a[i].candidate.pe_fabric != b[i].candidate.pe_fabric ||
        a[i].mapping_cost.objective != b[i].mapping_cost.objective ||
        a[i].throughput_per_kcycle != b[i].throughput_per_kcycle ||
        a[i].mw_per_throughput != b[i].mw_per_throughput ||
        a[i].pareto_optimal != b[i].pareto_optimal) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  bench::title("P1", "Parallel DSE sweep: serial vs all-core sharding");
  bench::note("default DseSpace: 4 pe_counts x 4 thread_counts x 4 topologies");
  bench::note("x 2 fabrics = 128 candidates, annealed mapping per candidate");
  bench::rule();

  const auto graph = apps::mjpeg_task_graph();
  core::DseSpace space;  // full default cartesian space
  core::AnnealConfig anneal;
  anneal.iterations = 2'000;  // keep the bench snappy; work per candidate
                              // still dwarfs the sharding overhead

  std::vector<core::DsePoint> serial_pts, parallel_pts;
  const double serial_ms =
      run_timed(graph, space, anneal, core::DseConfig{1}, serial_pts);
  const double parallel_ms =
      run_timed(graph, space, anneal, core::DseConfig{0}, parallel_pts);
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;

  std::printf("  %-28s %10.1f ms\n", "serial (1 thread)", serial_ms);
  std::printf("  %-28s %10.1f ms   (%u hardware threads)\n",
              "parallel (all cores)", parallel_ms, cores);
  std::printf("  %-28s %10.2fx\n", "speedup", speedup);
  bench::rule();

  const bool bit_identical = identical(serial_pts, parallel_pts);
  bench::verdict(bit_identical,
                 "parallel sweep is bit-identical to the serial sweep");
  // Wall-clock is informational only — CI runs this bench on contended
  // shared runners where the ratio is noisy, so only correctness gates.
  bench::note(cores == 1
                  ? "(1 hardware thread: expect ~1.0x; speedup needs cores)"
                  : "(expect near-linear scaling on idle multi-core hosts)");
  return bit_identical ? 0 : 1;
}
