// Section 3's second "main design issue": embedded memory architecture
// tradeoffs — eSRAM vs eDRAM vs eFlash vs external DRAM, plus the
// latency-hiding trio (cache + prefetch + the memory wall).
#include <vector>

#include "bench_util.hpp"
#include "soc/mem/mem_tech.hpp"
#include "soc/mem/prefetch.hpp"
#include "soc/sim/rng.hpp"

using namespace soc;

int main() {
  bench::title("M1", "Embedded memory technologies, 8 Mbit macro per node");
  bench::rule();
  std::printf("  %-8s %-9s %10s %9s %9s %12s %12s\n", "node", "kind",
              "area mm2", "rd cyc", "wr cyc", "rd pJ/word", "static mW");
  for (const auto& node : {*tech::find_node(std::string("130nm")),
                           tech::node_90nm(), tech::node_50nm()}) {
    const auto cmp = mem::compare_memories(8u << 20, node);
    for (const auto* m : {&cmp.sram, &cmp.edram, &cmp.eflash, &cmp.external}) {
      std::printf("  %-8s %-9s %10.2f %9u %9u %12.2f %12.3f\n",
                  node.name.c_str(), std::string(mem::to_string(m->kind)).c_str(),
                  m->area_mm2, m->read_cycles, m->write_cycles,
                  m->read_energy_pj_per_word, m->static_power_mw);
    }
    bench::rule();
  }

  bench::title("M2", "The memory wall in cycles (external DRAM @55ns)");
  bench::rule();
  std::printf("  %-8s %10s %14s\n", "node", "clk GHz", "ext-DRAM cycles");
  for (const auto& n : tech::roadmap()) {
    const auto ext = mem::memory_macro(mem::MemoryKind::kExternalDram,
                                       1u << 20, n);
    std::printf("  %-8s %10.2f %14u\n", n.name.c_str(), n.clock_ghz(20.0),
                ext.read_cycles);
  }
  bench::note("fixed wall-clock DRAM turns into 100+ cycles at the 50nm node:");
  bench::note("the latency the paper's multithreading/prefetch/split-transaction");
  bench::note("trio exists to hide (Section 6.2)");

  bench::title("M3", "Stride prefetching on streaming vs random traffic");
  bench::rule();
  std::vector<std::uint64_t> stream;
  for (std::uint64_t a = 0; a < 512 * 1024; a += 8) stream.push_back(a);
  sim::Rng rng(3);
  std::vector<std::uint64_t> random;
  for (int i = 0; i < 60'000; ++i) {
    random.push_back(rng.next_below(1u << 22) & ~7ULL);
  }
  const mem::CacheConfig cache{16 * 1024, 32, 4};
  const mem::StridePrefetcher::Config pf{16, 4, 2};
  const auto rs = mem::run_prefetch_experiment(stream, cache, pf);
  const auto rr = mem::run_prefetch_experiment(random, cache, pf);
  std::printf("  %-10s %14s %14s %12s\n", "traffic", "base hit", "prefetch hit",
              "issued");
  std::printf("  %-10s %13.1f%% %13.1f%% %12llu\n", "stream",
              100 * rs.baseline_hit_rate, 100 * rs.prefetch_hit_rate,
              static_cast<unsigned long long>(rs.prefetches_issued));
  std::printf("  %-10s %13.1f%% %13.1f%% %12llu\n", "random",
              100 * rr.baseline_hit_rate, 100 * rr.prefetch_hit_rate,
              static_cast<unsigned long long>(rr.prefetches_issued));
  bench::verdict(rs.prefetch_hit_rate > rs.baseline_hit_rate + 0.15,
                 "prefetching recovers streaming misses (one of the paper's "
                 "three latency-hiding mechanisms)");
  return 0;
}
