// C3: hardware (56%/yr) vs embedded-software (140%/yr) complexity growth
// and the crossover the paper reports "today" (~2003).
#include "bench_util.hpp"
#include "soc/econ/trends.hpp"

using namespace soc;

int main() {
  bench::title("C3", "HW vs embedded-SW complexity growth (Section 6)");
  bench::note("paper: transistors +56%/yr; embedded S/W +140%/yr;");
  bench::note("       'in many leading SoCs today [2003] the embedded S/W effort");
  bench::note("        has surpassed that of the H/W design effort'");
  bench::rule();
  const auto hw = econ::hw_complexity_trend();
  const auto sw = econ::sw_complexity_trend();
  std::printf("  %-6s %14s %14s %8s\n", "year", "HW complexity", "SW complexity",
              "SW/HW");
  for (int year = 1997; year <= 2010; ++year) {
    const double h = hw.value_at(year);
    const double s = sw.value_at(year);
    std::printf("  %-6d %14.2f %14.2f %8.2f\n", year, h, s, s / h);
  }
  bench::rule();
  const double cross = econ::crossover_year(hw, sw);
  std::printf("  crossover year: %.1f\n", cross);
  std::printf("  HW doubling time: %.2f years (Moore's law ~18 months)\n",
              hw.years_to_grow(2.0));
  bench::verdict(cross > 2001 && cross < 2005,
                 "SW effort overtakes HW effort around the paper's date (2003)");
  return 0;
}
