// C7/F1: the processor-spectrum trade-off of Figure 1 — the same kernels
// implemented across GP CPU, ASIP (measured on the MiniRISC ISS) and
// projected onto eFPGA/hardwired fabrics; plus the 10x eFPGA penalty and
// the "<5% of IC functionality" consequence (Section 6.3).
#include "bench_util.hpp"
#include "soc/proc/kernels.hpp"
#include "soc/tech/clock_model.hpp"
#include "soc/tech/energy_model.hpp"

using namespace soc;

int main() {
  const auto& node = tech::node_90nm();
  const tech::EnergyModel em(node);
  const tech::ClockModel ck(node);

  bench::title("F1", "Figure 1 spectrum: flexibility vs differentiation");
  bench::rule();
  std::printf("  %-11s %12s %12s %11s %11s %12s\n", "fabric", "energy/op",
              "area/op", "ops/cycle", "dev effort", "flexibility");
  for (const auto f : {tech::Fabric::kGeneralPurposeCpu, tech::Fabric::kDsp,
                       tech::Fabric::kAsip, tech::Fabric::kEfpga,
                       tech::Fabric::kHardwired}) {
    const auto& p = tech::fabric_profile(f);
    std::printf("  %-11s %11.1fx %11.1fx %11.1f %11.2f %12.2f\n", p.name,
                p.energy_per_op_rel, p.area_per_op_rel, p.ops_per_cycle,
                p.dev_effort_rel, p.respin_flexibility);
  }
  bench::verdict(tech::fabric_profile(tech::Fabric::kEfpga).energy_per_op_rel ==
                     10.0,
                 "eFPGA carries the paper's 10x cost/power penalty");

  bench::title("C7a", "Kernel suite measured on the MiniRISC ISS (GP vs ASIP)");
  bench::rule();
  std::printf("  %-12s %10s %10s %10s %10s %9s\n", "kernel", "GP cyc",
              "ASIP cyc", "speedup", "GP inst", "ASIP inst");
  bool all_correct = true;
  bool all_faster = true;
  for (const auto& k : proc::kernel_suite()) {
    const auto gp = proc::run_gp(k);
    const auto asip = proc::run_asip(k);
    all_correct &= gp.correct && asip.correct;
    all_faster &= asip.cycles < gp.cycles;
    std::printf("  %-12s %10llu %10llu %9.2fx %10llu %9llu\n", k.name.c_str(),
                static_cast<unsigned long long>(gp.cycles),
                static_cast<unsigned long long>(asip.cycles),
                static_cast<double>(gp.cycles) / static_cast<double>(asip.cycles),
                static_cast<unsigned long long>(gp.instructions),
                static_cast<unsigned long long>(asip.instructions));
  }
  bench::verdict(all_correct && all_faster,
                 "ASIP extension instructions beat GP code on every kernel");

  bench::title("C7b", "Full-spectrum projection: time and energy per kernel");
  bench::note("GP/ASIP cycles measured; eFPGA/hardwired use fabric ops/cycle at");
  bench::note("their design-style clocks (eFPGA fabric clocks ~3x slower).");
  bench::rule();
  std::printf("  %-12s %-11s %12s %12s %12s\n", "kernel", "fabric", "time ns",
              "energy pJ", "EDP pJ*ns");
  for (const auto& k : proc::kernel_suite()) {
    const auto gp = proc::run_gp(k);
    const auto asip = proc::run_asip(k);
    struct Row {
      const char* name;
      double cycles;
      double ghz;
      tech::Fabric fabric;
      double ops;  // energy-relevant op count
    };
    const Row rows[] = {
        {"gp-cpu", static_cast<double>(gp.cycles), ck.asic_ghz(),
         tech::Fabric::kGeneralPurposeCpu, static_cast<double>(gp.instructions)},
        {"asip", static_cast<double>(asip.cycles), ck.asic_ghz(),
         tech::Fabric::kAsip, static_cast<double>(asip.instructions)},
        {"efpga",
         static_cast<double>(k.useful_ops) /
             tech::fabric_profile(tech::Fabric::kEfpga).ops_per_cycle,
         ck.efpga_ghz(), tech::Fabric::kEfpga,
         static_cast<double>(k.useful_ops)},
        {"hardwired",
         static_cast<double>(k.useful_ops) /
             tech::fabric_profile(tech::Fabric::kHardwired).ops_per_cycle,
         ck.asic_ghz(), tech::Fabric::kHardwired,
         static_cast<double>(k.useful_ops)},
    };
    for (const auto& r : rows) {
      const double ns = r.cycles / r.ghz;
      const double pj = r.ops * em.op_energy_pj(r.fabric);
      std::printf("  %-12s %-11s %12.1f %12.1f %12.1f\n", k.name.c_str(),
                  r.name, ns, pj, ns * pj);
    }
    bench::rule();
  }

  bench::title("C7c", "Why eFPGA stays below ~5% of IC functionality");
  bench::note("area cost of moving functionality to eFPGA vs keeping it on");
  bench::note("programmable processors, for a fixed performance target");
  bench::rule();
  const auto& efpga = tech::fabric_profile(tech::Fabric::kEfpga);
  const auto& hw = tech::fabric_profile(tech::Fabric::kHardwired);
  std::printf("  eFPGA area per unit throughput vs hardwired: %.0fx\n",
              efpga.area_per_op_rel / hw.area_per_op_rel);
  std::printf("  eFPGA energy per op vs hardwired:            %.0fx\n",
              efpga.energy_per_op_rel / hw.energy_per_op_rel);
  // Budget view: if eFPGA occupies fraction f of the die but delivers
  // hardwired-class kernels, the area overhead vs hard IP is 9f of the die.
  std::printf("  die-area overhead of hosting X%% of functionality on eFPGA\n");
  std::printf("  (vs hardwired IP of the same throughput):\n");
  for (const double f : {0.01, 0.05, 0.10, 0.20}) {
    std::printf("    %4.0f%% functionality -> +%4.1f%% die area\n", 100 * f,
                100 * f * (efpga.area_per_op_rel - 1.0));
  }
  bench::verdict(true,
                 "10x penalty restricts eFPGA to small, regular, respin-prone "
                 "functions (<~5%)");
  return 0;
}
