// C6/F2: the paper's Section 7.2 experiment — a DSOC IPv4 fast path on a
// multithreaded FPPA: near-100% PE utilization despite >100-cycle NoC
// latency, at 10 Gb/s worst-case line rate. Reproduced as sweeps over
// processor count, thread count and NoC latency.
#include "bench_util.hpp"
#include "soc/apps/fastpath.hpp"
#include "soc/apps/ipv4.hpp"

using namespace soc;

namespace {

apps::FastpathConfig base_config() {
  apps::FastpathConfig cfg;
  cfg.fppa.topology = noc::TopologyKind::kMesh2D;
  cfg.fppa.mem_timing = tlm::MemoryTiming{4, 2, 8};
  cfg.fppa.mem_words = 1u << 22;
  cfg.num_routes = 4'000;
  cfg.ingress_ports = 6;
  cfg.table_replicas = 4;
  cfg.seed = 12;
  return cfg;
}

apps::FastpathResults run(apps::FastpathConfig cfg) {
  apps::FastpathApp app(std::move(cfg));
  return app.run(/*warmup=*/8'000, /*measure=*/50'000);
}

}  // namespace

int main() {
  const auto& node50 = tech::node_50nm();
  const apps::LineRate line{};  // 10 Gb/s, 64 B worst case
  const double budget = apps::cycles_per_packet_budget(line, node50);

  bench::title("C6a", "Line-rate arithmetic at the 50nm node");
  std::printf("  worst-case 10G packet rate: %.2f Mpps\n",
              line.packets_per_sec() / 1e6);
  std::printf("  ASIC clock at 50nm: %.2f GHz\n", node50.clock_ghz(20.0));
  std::printf("  platform-wide budget: %.0f cycles/packet\n", budget);

  bench::title("C6b", "Utilization & throughput vs hardware threads");
  bench::note("16 PEs, mesh, link latency 20 (remote RTT > 100 cycles),");
  bench::note("saturating offered load (0.5 pkt/cycle)");
  bench::rule();
  std::printf("  %-8s %10s %10s %12s %12s %10s\n", "threads", "util", "fwd/kcyc",
              "remote RTT", "Gbps@50nm", "verify");
  double util1 = 0, util16 = 0, fwd1 = 0, fwd16 = 0, rtt16 = 0;
  for (const int threads : {1, 2, 4, 8, 16}) {
    auto cfg = base_config();
    cfg.fppa.num_pes = 16;
    cfg.fppa.threads_per_pe = threads;
    cfg.fppa.net.link_latency_cycles = 20;
    cfg.packets_per_cycle = 0.5;
    const auto r = run(cfg);
    if (threads == 1) {
      util1 = r.platform.mean_pe_utilization;
      fwd1 = r.forwarded_per_kcycle;
    }
    if (threads == 16) {
      util16 = r.platform.mean_pe_utilization;
      fwd16 = r.forwarded_per_kcycle;
      rtt16 = r.platform.mean_remote_latency;
    }
    std::printf("  %-8d %10.3f %10.1f %12.1f %12.2f %9s\n", threads,
                r.platform.mean_pe_utilization, r.forwarded_per_kcycle,
                r.platform.mean_remote_latency, r.gbps_at(node50),
                r.verify_failures == 0 ? "ok" : "FAIL");
  }
  bench::rule();
  bench::verdict(rtt16 > 100.0 && util16 > 0.8 && util16 > 2.5 * util1 &&
                     fwd16 > 3.0 * fwd1,
                 "HW multithreading sustains near-full utilization under "
                 ">100-cycle NoC latency");

  bench::title("C6c", "Processors needed to hold the 10G line (130nm clock)");
  bench::note("StepNP-era platform: 130nm ASIC clock ~1.06 GHz, realistic");
  bench::note("fast path ~500 compute cycles/packet + 3 dependent table reads.");
  bench::note("10G worst case = 14.88 Mpps -> offered 0.0140 packets/cycle;");
  bench::note("40G row = 4x that. Paper: 'ten to hundreds of processors'.");
  bench::rule();
  // Copy, not reference: find_node returns the optional by value, so a
  // reference would dangle once the temporary dies at end of statement.
  const auto node130 = *tech::find_node(std::string("130nm"));
  const double clk130_hz = node130.clock_ghz(20.0) * 1e9;
  const double line10_ppc = line.packets_per_sec() / clk130_hz;
  std::printf("  line-rate budget at 130nm: %.1f cycles/packet\n",
              1.0 / line10_ppc);
  std::printf("  %-7s %-7s %10s %10s %10s %10s\n", "line", "PEs", "accepted",
              "util", "fwd Mpps", "verify");
  bool eight_holds = false;
  bool four_fails = false;
  const struct { const char* line_name; double mult; int pes; } cases[] = {
      {"10G", 1.0, 4},  {"10G", 1.0, 8},  {"10G", 1.0, 16},
      {"40G", 4.0, 16}, {"40G", 4.0, 32},
  };
  for (const auto& c : cases) {
    auto cfg = base_config();
    cfg.fppa.num_pes = c.pes;
    cfg.fppa.threads_per_pe = 8;
    cfg.fppa.net.link_latency_cycles = 4;
    cfg.parse_cycles = 300;
    cfg.rewrite_cycles = 200;
    cfg.packets_per_cycle = line10_ppc * c.mult;
    cfg.ingress_ports = 8;
    const auto r = run(cfg);
    const double mpps =
        r.forwarded_per_kcycle / 1000.0 * clk130_hz / 1e6;
    if (c.pes == 4 && c.mult == 1.0) four_fails = r.accepted_fraction < 0.99;
    if (c.pes == 8 && c.mult == 1.0) eight_holds = r.accepted_fraction > 0.99;
    std::printf("  %-7s %-7d %9.1f%% %10.3f %10.2f %10s\n", c.line_name, c.pes,
                100.0 * r.accepted_fraction, r.platform.mean_pe_utilization,
                mpps, r.verify_failures == 0 ? "ok" : "FAIL");
  }
  bench::rule();
  bench::verdict(four_fails && eight_holds,
                 "holding 10G worst-case at 130nm takes ~8 multithreaded PEs "
                 "(tens of PEs at 40G) — the paper's MP-SoC scale");

  bench::title("A4", "Lookup ablation: software trie walk vs NPSE engine");
  bench::note("8 PEs x 4 threads, same load; the engine collapses ~3 dependent");
  bench::note("NoC round trips into one pipelined request (Section 8, [9])");
  bench::rule();
  std::printf("  %-10s %10s %10s %12s %12s\n", "mode", "util", "fwd/kcyc",
              "pkt lat", "reads/pkt");
  double lat_sw = 0, lat_hw = 0, fwd_sw = 0, fwd_hw = 0;
  for (const auto mode :
       {apps::LookupMode::kSoftwareWalk, apps::LookupMode::kHardwareEngine}) {
    auto cfg = base_config();
    cfg.fppa.num_pes = 8;
    cfg.fppa.threads_per_pe = 4;
    cfg.packets_per_cycle = 0.25;
    cfg.lookup_mode = mode;
    const auto r = run(cfg);
    const bool hw = mode == apps::LookupMode::kHardwareEngine;
    if (hw) {
      lat_hw = r.platform.mean_task_latency;
      fwd_hw = r.forwarded_per_kcycle;
    } else {
      lat_sw = r.platform.mean_task_latency;
      fwd_sw = r.forwarded_per_kcycle;
    }
    std::printf("  %-10s %10.3f %10.1f %12.1f %12.2f\n",
                hw ? "npse-hw" : "sw-walk", r.platform.mean_pe_utilization,
                r.forwarded_per_kcycle, r.platform.mean_task_latency,
                r.mean_trie_reads);
  }
  bench::rule();
  bench::verdict(lat_hw < lat_sw && fwd_hw >= fwd_sw * 0.95,
                 "hardware search engine cuts packet latency vs software walk");

  bench::title("A5", "Dispatch ablation: shared pool queue vs partitioned");
  bench::note("same platform and load; partitioned queues suffer head-of-line");
  bench::note("blocking when per-packet service times vary (trie depth, NoC)");
  bench::rule();
  std::printf("  %-13s %10s %10s %12s %12s\n", "dispatch", "util", "fwd/kcyc",
              "mean lat", "p99 lat");
  double p99_shared = 0, p99_part = 0;
  for (const auto mode :
       {platform::PoolMode::kSharedQueue, platform::PoolMode::kPartitionedQueues}) {
    auto cfg = base_config();
    cfg.fppa.num_pes = 8;
    cfg.fppa.threads_per_pe = 4;
    cfg.packets_per_cycle = 0.16;
    cfg.fppa.pool_mode = mode;
    const auto r = run(cfg);
    const bool shared = mode == platform::PoolMode::kSharedQueue;
    (shared ? p99_shared : p99_part) = r.platform.p99_task_latency;
    std::printf("  %-13s %10.3f %10.1f %12.1f %12.1f\n",
                shared ? "shared" : "partitioned",
                r.platform.mean_pe_utilization, r.forwarded_per_kcycle,
                r.platform.mean_task_latency, r.platform.p99_task_latency);
  }
  bench::rule();
  bench::verdict(p99_shared <= p99_part,
                 "a shared server-pool queue bounds tail latency vs "
                 "partitioned dispatch");

  bench::title("C6d", "Below saturation: packet latency and acceptance");
  bench::rule();
  std::printf("  %-10s %10s %12s %12s\n", "load p/c", "accepted", "mean lat",
              "p99 lat");
  for (const double load : {0.05, 0.1, 0.2}) {
    auto cfg = base_config();
    cfg.fppa.num_pes = 16;
    cfg.fppa.threads_per_pe = 8;
    cfg.packets_per_cycle = load;
    const auto r = run(cfg);
    std::printf("  %-10.2f %9.1f%% %12.1f %12.1f\n", load,
                100.0 * r.accepted_fraction, r.platform.mean_task_latency,
                r.platform.p99_task_latency);
  }
  return 0;
}
