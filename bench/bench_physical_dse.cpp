// Physically-aware DSE across the process roadmap: the same design space is
// swept at 130/90/65 nm on one fixed die geometry, with every candidate's
// NoC floorplanned and its wire delays/energy folded into both DSE stages.
// Reproduces the paper's Section 6.1 claim that deep-submicron wire delay —
// not logic — starts deciding the platform architecture: as the node
// shrinks, shared-medium topologies accumulate multi-cycle wires and the
// Pareto front shifts toward short-wire fabrics. Emits
// BENCH_physical_dse.json with the per-node front composition (under both
// the classic 3-axis objective triple and the 4-axis set with
// energy-per-item added — the energy frontier per node) and the wire-delay
// share of edge latency.
#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_dse_util.hpp"
#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/objective_space.hpp"

using namespace soc;

namespace {

constexpr double kDieMm2 = 225.0;  // 15 mm x 15 mm, the paper's big die

std::set<std::string> front_set(const std::vector<core::DsePoint>& pts) {
  std::set<std::string> s;
  for (const auto& pt : pts) {
    if (!pt.pareto_optimal) continue;
    s.insert(std::to_string(pt.candidate.num_pes) + "x" +
             std::to_string(pt.candidate.threads_per_pe) + " " +
             noc::to_string(pt.candidate.topology));
  }
  return s;
}

std::string topology_census(const std::vector<core::DsePoint>& pts) {
  std::map<std::string, int> census;
  for (const auto& pt : pts) {
    if (pt.pareto_optimal) ++census[noc::to_string(pt.candidate.topology)];
  }
  std::string out;
  for (const auto& [name, n] : census) {
    if (!out.empty()) out += ",";
    out += name + "=" + std::to_string(n);
  }
  return out;
}

bool same_sim_figures(const std::vector<core::DsePoint>& a,
                      const std::vector<core::DsePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].validated != b[i].validated ||
        a[i].sim_throughput_per_kcycle != b[i].sim_throughput_per_kcycle ||
        a[i].sim_avg_packet_latency != b[i].sim_avg_packet_latency) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::JsonReport json("physical_dse");

  core::DseSpace space;
  space.pe_counts = {4, 8, 16};
  space.thread_counts = {2, 4};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D,
                      noc::TopologyKind::kCrossbar};
  space.fabrics = {tech::Fabric::kAsip};
  core::AnnealConfig ac;
  ac.iterations = 2'000;
  core::DseConfig dc;
  dc.die_mm2 = kDieMm2;
  dc.validate_pareto = true;
  const auto graph = apps::mjpeg_task_graph();
  const std::vector<std::string> node_names{"130nm", "90nm", "65nm"};

  bench::title("P1", "Nanometer wall: per-node fronts on one fixed die");
  bench::note("same DseSpace, same 225 mm2 floorplan, shrinking transistors;");
  bench::note("wire delay folded into link latency, energy, area and power");
  bench::rule();

  std::vector<std::set<std::string>> fronts;
  std::vector<std::vector<core::DsePoint>> per_node_points;
  bool energy_front_differs = false;
  double total_ms = 0.0;
  int prev_extra = 0;
  bool extra_monotonic = true;
  int extra_130 = 0, extra_65 = 0;
  for (const auto& name : node_names) {
    core::DseSpace s = space;
    s.nodes = {*tech::find_node(name)};
    const auto t0 = std::chrono::steady_clock::now();
    auto points = bench::run_session(graph, s, tech::node_90nm(), {}, ac, dc);
    total_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

    // Wire-delay share of edge latency, averaged over validated front
    // points: extra wire cycles / total unloaded path latency at the
    // platform's average PE distance.
    double share_sum = 0.0;
    int share_n = 0;
    for (const auto& pt : points) {
      if (!pt.validated) continue;
      const auto platform = core::make_candidate_platform(pt.candidate, dc);
      const double avg_lat = platform.avg_path_latency_cycles();
      const double hop_lat = core::kNocCyclesPerHop * platform.avg_hops();
      if (avg_lat > 0.0) {
        share_sum += (avg_lat - hop_lat) / avg_lat;
        ++share_n;
      }
    }
    const double share = share_n ? share_sum / share_n : 0.0;

    // Wire-physics probe on one FIXED candidate (the 16-PE crossbar — the
    // longest wires in the space), independent of which candidates made the
    // front at this node, so the monotonicity verdict measures the wires
    // and not the front composition.
    const core::DseCandidate probe{16, 4, noc::TopologyKind::kCrossbar,
                                   tech::Fabric::kAsip, *tech::find_node(name)};
    const auto probe_platform = core::make_candidate_platform(probe, dc);
    int max_extra = 0;
    for (int a = 0; a < probe.num_pes; ++a) {
      for (int b = 0; b < probe.num_pes; ++b) {
        max_extra = std::max(max_extra, probe_platform.path_extra_cycles(a, b));
      }
    }
    const auto front = front_set(points);

    // The energy frontier at this node: the same analytic sweep ranked by a
    // 4-axis DseSession (tput, area, power, energy-per-item). Dominance
    // over more axes is strictly harder, so this front is a superset; the
    // extra members are the energy-efficient designs the classic triple
    // hides. Deliberately a full (stage-1) DseSession rather than a cheap
    // mark_front over a copy of `points`: this bench is the acceptance
    // artifact that the 4-axis *session* changes the front on a real node
    // sweep, end to end through the API. The redundant anneal pass runs
    // outside the timed region above.
    core::DseProblem p4{graph,
                        core::ObjectiveSpace::from_names(
                            "tput,area,power,energy"),
                        {}, tech::node_90nm()};
    core::DseConfig dc4 = dc;       // same physical sweep (225 mm2 die) ...
    dc4.validate_pareto = false;    // ... but the census only needs stage 1
    core::DseSession session4(std::move(p4), s, ac, dc4);
    session4.front();
    const auto front4 = front_set(session4.points());
    std::printf("  %-6s front=%zu {%s} | +energy axis front=%zu | wire-delay "
                "share %.1f%% | crossbar path extra %d cyc\n",
                name.c_str(), front.size(), topology_census(points).c_str(),
                front4.size(), 100.0 * share, max_extra);

    if (name == "130nm") extra_130 = max_extra;
    if (name == "65nm") extra_65 = max_extra;
    extra_monotonic = extra_monotonic && max_extra >= prev_extra;
    prev_extra = max_extra;

    json.add(name + ".front_points", static_cast<long long>(front.size()));
    json.add(name + ".front_topologies", topology_census(points));
    json.add(name + ".front_points_energy4",
             static_cast<long long>(front4.size()));
    json.add(name + ".front_topologies_energy4",
             topology_census(session4.points()));
    json.add(name + ".wire_delay_share_of_latency", share);
    json.add(name + ".crossbar_path_extra_cycles",
             static_cast<long long>(max_extra));
    energy_front_differs = energy_front_differs || front4 != front;
    fronts.push_back(front);
    per_node_points.push_back(std::move(points));
  }
  bench::rule();
  std::printf("  %zu nodes x %zu candidates in %.0f ms\n", node_names.size(),
              per_node_points.front().size(), total_ms);
  bench::verdict(extra_monotonic && extra_65 > extra_130,
                 "wire extra-latency grows monotonically as the node "
                 "shrinks at fixed die");
  const bool shifted = fronts.front() != fronts.back();
  bench::verdict(shifted,
                 "the Pareto front shifts between 130 nm and 65 nm (wire "
                 "delay decides architecture)");
  bench::verdict(energy_front_differs,
                 "adding the energy-per-item axis changes the front on at "
                 "least one node (the triple hides energy-optimal designs)");
  json.add("front_shift_130_vs_65", shifted);
  json.add("energy_axis_changes_front", energy_front_differs);
  json.add("extra_latency_monotonic", extra_monotonic);
  json.add("candidates_per_node",
           static_cast<long long>(per_node_points.front().size()));
  json.add("die_mm2", kDieMm2);
  json.add("sweep_ms", total_ms);

  bench::title("P2", "Determinism: physical sweep at 1 thread vs all cores");
  bench::rule();
  core::DseSpace s65 = space;
  s65.nodes = {*tech::find_node("65nm")};
  core::DseConfig serial = dc;
  serial.num_threads = 1;
  const auto pts_serial = bench::run_session(graph, s65, tech::node_90nm(), {}, ac, serial);
  const bool deterministic =
      same_sim_figures(per_node_points.back(), pts_serial);
  bench::verdict(deterministic,
                 "validated physical sweep bit-identical across thread "
                 "counts");
  json.add("deterministic_across_threads", deterministic);

  bench::title("P3", "Analytic-vs-simulated agreement survives wire delay");
  bench::note("open-loop replay on the annotated NoC must still carry the");
  bench::note("analytically predicted load at every node");
  bench::rule();
  double min_ratio = 1e300;
  int saturated = 0, validated = 0;
  for (const auto& points : per_node_points) {
    for (const auto& pt : points) {
      if (!pt.validated) continue;
      ++validated;
      min_ratio = std::min(min_ratio, pt.sim_to_analytic_ratio);
      saturated += pt.sim_network_saturated ? 1 : 0;
    }
  }
  std::printf("  %d validated front points | min sim/analytic ratio %.2f | "
              "%d saturated\n",
              validated, validated ? min_ratio : 0.0, saturated);
  bench::verdict(validated > 0 && min_ratio >= 0.5,
                 "node-dependent latencies did not break the two-stage "
                 "agreement");
  json.add("validated_points", static_cast<long long>(validated));
  json.add("min_sim_to_analytic_ratio", validated ? min_ratio : 0.0);
  json.add("saturated_points", static_cast<long long>(saturated));

  json.write();
  return 0;
}
