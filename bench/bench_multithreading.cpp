// A1: the latency-hiding ablation — hardware-thread count vs remote-op
// latency, analytic model against the event-driven PE simulation
// (Section 6.2's multithreading argument in isolation).
#include <memory>

#include "bench_util.hpp"
#include "soc/noc/topologies.hpp"
#include "soc/platform/mt_pe.hpp"
#include "soc/proc/multithread.hpp"
#include "soc/tlm/endpoints.hpp"

using namespace soc;

namespace {

struct SimPoint {
  double utilization;
  double remote_latency;
};

/// One PE + one memory, task = compute C | read | compute C, saturating
/// backlog; link latency scales the remote RTT.
SimPoint simulate(int contexts, std::uint32_t link_latency, sim::Cycle compute) {
  sim::EventQueue queue;
  noc::NetworkConfig nc;
  nc.link_latency_cycles = link_latency;
  noc::Network net(noc::make_crossbar(4), nc, queue);
  tlm::Transport transport(net, queue);
  tlm::MemoryEndpoint mem(tlm::MemoryTiming{4, 2, 8}, 4096, queue);
  transport.attach(1, mem);
  platform::WorkQueue pool;
  platform::PeConfig pc;
  pc.terminal = 0;
  pc.thread_contexts = contexts;
  platform::MtPe pe("pe", pc, transport, pool, queue);
  pe.start();
  for (int i = 0; i < 4000; ++i) {
    platform::WorkItem item;
    item.created_at = 0;
    item.gen = [compute, step = 0](const std::vector<std::uint32_t>&) mutable
        -> platform::Step {
      switch (step++) {
        case 0: return platform::Step::compute(compute);
        case 1: return platform::Step::read(1, 0, 1);
        case 2: return platform::Step::compute(compute);
        default: return platform::Step::done();
      }
    };
    pool.push(std::move(item));
  }
  constexpr sim::Cycle kWindow = 60'000;
  queue.run_until(kWindow);
  return SimPoint{pe.utilization(kWindow), pe.remote_latency().mean()};
}

}  // namespace

int main() {
  bench::title("A1a", "PE utilization vs hardware threads and remote latency");
  bench::note("task shape: compute 30 | remote read | compute 30 (C=60/op)");
  bench::note("sim = event-driven MtPe; model = T*C/(C+L) capped at C/(C+s)");
  bench::rule();
  std::printf("  %-10s %-9s %10s %10s %10s\n", "latency", "threads", "sim util",
              "model", "error");
  bool model_tracks = true;
  for (const std::uint32_t link : {5u, 20u, 60u}) {
    for (const int threads : {1, 2, 4, 8, 16}) {
      const auto pt = simulate(threads, link, 30);
      proc::MtParams p;
      p.threads = threads;
      p.compute_cycles = 60.0;
      p.remote_latency = pt.remote_latency;
      p.switch_penalty = 1.0;
      const double model = proc::mt_utilization(p);
      const double err = pt.utilization - model;
      model_tracks &= std::abs(err) < 0.15;
      std::printf("  L=%-8.0f %-9d %10.3f %10.3f %+10.3f\n", pt.remote_latency,
                  threads, pt.utilization, model, err);
    }
    bench::rule();
  }
  bench::verdict(model_tracks,
                 "analytic multithreading model tracks the simulation");

  bench::title("A1b", "Threads needed to hide a given latency");
  bench::rule();
  std::printf("  %-12s %10s %10s %10s\n", "latency cyc", "C=25", "C=50",
              "C=100");
  for (const double lat : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    std::printf("  %-12.0f %10d %10d %10d\n", lat,
                proc::threads_to_hide_latency(25, lat),
                proc::threads_to_hide_latency(50, lat),
                proc::threads_to_hide_latency(100, lat));
  }
  bench::note("paper: >100-cycle NoC latencies are hidden with the thread");
  bench::note("counts StepNP-class NPUs provision (4-16 contexts)");

  bench::title("A1c", "Area cost of multithreading vs utilization gained");
  bench::rule();
  std::printf("  %-9s %12s %14s %14s\n", "threads", "area (rel)", "util(L=150)",
              "util/area");
  for (const int t : {1, 2, 4, 8, 16}) {
    proc::MtParams p;
    p.threads = t;
    p.compute_cycles = 60.0;
    p.remote_latency = 150.0;
    const double u = proc::mt_utilization(p);
    const double a = proc::mt_area_overhead(t);
    std::printf("  %-9d %12.2f %14.3f %14.3f\n", t, a, u, u / a);
  }
  bench::note("the sweet spot sits where the paper's platforms sit: enough");
  bench::note("contexts to saturate, before register-bank area dominates");
  return 0;
}
