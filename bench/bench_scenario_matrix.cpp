// Constrained scenario-matrix sweep: hundreds of generated task graphs
// (ScenarioGenerator::matrix — layered / series-parallel / fan-in-heavy)
// crossed with kind-striped, capacity-limited platforms under all four
// registered mapping strategies. Measures per-mapper feasibility rate and
// repair overhead (tasks moved, wall-clock share), checks the
// feasible-or-typed-violation contract on every instance, and replays a
// constrained scenario-set DseSession at 1/3/hardware threads to confirm
// bit-identical fronts. `--quick` shrinks the matrix for CI smoke runs.
// Emits BENCH_scenario_matrix.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "soc/core/constraints.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/mapper.hpp"
#include "soc/core/mapping.hpp"
#include "soc/core/objective_space.hpp"
#include "soc/core/scenario.hpp"
#include "soc/sim/parallel.hpp"
#include "soc/sim/rng.hpp"

using namespace soc;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// PE pool striped across `groups` task kinds with a uniform capacity.
core::PlatformDesc striped_platform(int pes, int groups, double capacity) {
  std::vector<core::PeDesc> descs;
  for (int i = 0; i < pes; ++i) {
    descs.push_back(core::PeDesc{tech::Fabric::kAsip, 4, {i % groups},
                                 capacity});
  }
  return core::PlatformDesc(std::move(descs), noc::TopologyKind::kMesh2D,
                            tech::node_90nm());
}

/// Exact-equality comparison of the figures a DsePoint carries — the
/// bit-identity the thread-count replay asserts.
bool points_equal(const core::DsePoint& a, const core::DsePoint& b) {
  return a.scenario == b.scenario && a.scenario_name == b.scenario_name &&
         a.mapping == b.mapping && a.mapper == b.mapper &&
         a.mapping_cost.bottleneck_cycles == b.mapping_cost.bottleneck_cycles &&
         a.mapping_cost.comm_word_hops == b.mapping_cost.comm_word_hops &&
         a.mapping_cost.energy_pj_per_item ==
             b.mapping_cost.energy_pj_per_item &&
         a.mapping_cost.objective == b.mapping_cost.objective &&
         a.mapping_cost.feasible == b.mapping_cost.feasible &&
         a.mapping_cost.violations.size() == b.mapping_cost.violations.size() &&
         a.silicon.total_area_mm2 == b.silicon.total_area_mm2 &&
         a.throughput_per_kcycle == b.throughput_per_kcycle &&
         a.pareto_optimal == b.pareto_optimal;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::JsonReport json("scenario_matrix");

  const int kScenarios = quick ? 24 : 120;
  const int kKinds = 3;
  const core::ScenarioGenerator gen(0xd5e5ceULL);
  const std::vector<core::TaskGraph> graphs = gen.matrix(kScenarios, kKinds);
  // Two platform sizes; capacity is deliberately tight so phase-2 repair
  // (capacity draining) gets real work and some instances stay infeasible —
  // exactly the cases the typed-violation contract must cover.
  const std::vector<core::PlatformDesc> platforms = {
      striped_platform(6, kKinds, 18.0), striped_platform(9, kKinds, 12.0)};
  const core::MappingConstraints constraints;
  core::AnnealConfig ac;
  ac.iterations = quick ? 200 : 1'000;

  bench::title("M1", "Constrained matrix: feasibility and repair per mapper");
  bench::note(std::to_string(kScenarios) + " scenarios x " +
              std::to_string(platforms.size()) +
              " kind-striped capacity-limited platforms x 4 mappers");
  bench::rule();

  const std::vector<std::string> mappers = {"random", "greedy", "heft",
                                            "anneal"};
  bool all_feasible_or_typed = true;
  std::printf("  %-8s %10s %12s %12s %14s %12s\n", "mapper", "feasible",
              "moved/inst", "repair ms", "repair share", "blind moved");
  for (const auto& name : mappers) {
    int feasible = 0;
    long long moved = 0;
    long long blind_moved = 0;
    double heur_ms = 0.0;
    double repair_ms = 0.0;
    int total = 0;
    const auto run_heuristic = [&](const core::TaskGraph& g,
                                   const core::PlatformDesc& p, sim::Rng& rng,
                                   const core::MappingConstraints& c) {
      if (name == "random") return core::random_mapping(g, p, rng, c);
      if (name == "greedy") return core::greedy_mapping(g, p, {}, c);
      if (name == "heft") return core::heft_mapping(g, p, {}, c);
      return core::anneal_mapping(g, p, {}, ac, rng, c);
    };
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      for (std::size_t pi = 0; pi < platforms.size(); ++pi, ++total) {
        const core::TaskGraph& g = graphs[gi];
        const core::PlatformDesc& p = platforms[pi];
        sim::Rng rng(sim::derive_seed(
            0xbe7c, gi * platforms.size() * mappers.size() + pi));
        // The free heuristic runs unrepaired, so the repair pass that the
        // registry wrappers bolt on is metered separately.
        auto t0 = std::chrono::steady_clock::now();
        core::Mapping m = run_heuristic(g, p, rng, constraints);
        heur_ms += ms_since(t0);
        t0 = std::chrono::steady_clock::now();
        const core::RepairResult r =
            core::repair_mapping(g, p, m, constraints);
        repair_ms += ms_since(t0);
        moved += r.moved_tasks;
        if (constraints.satisfied(g, p, m)) {
          ++feasible;
        } else if (constraints.violations(g, p, m).empty()) {
          all_feasible_or_typed = false;  // infeasible yet untyped: broken
        }
        // Repair capability, isolated: rescue a constraint-blind run of the
        // same heuristic (what repair must do when the search can't see the
        // constraints at all).
        sim::Rng blind_rng(sim::derive_seed(
            0xb11d, gi * platforms.size() * mappers.size() + pi));
        core::Mapping blind =
            run_heuristic(g, p, blind_rng, core::MappingConstraints::none());
        blind_moved += core::repair_mapping(g, p, blind, constraints)
                           .moved_tasks;
        if (!constraints.satisfied(g, p, blind) &&
            constraints.violations(g, p, blind).empty()) {
          all_feasible_or_typed = false;
        }
      }
    }
    const double rate = static_cast<double>(feasible) / total;
    const double share = repair_ms / (heur_ms + repair_ms);
    std::printf("  %-8s %9.1f%% %12.2f %12.3f %13.1f%% %12.2f\n", name.c_str(),
                100.0 * rate, static_cast<double>(moved) / total,
                repair_ms / total, 100.0 * share,
                static_cast<double>(blind_moved) / total);
    json.add("feasible_rate_" + name, rate);
    json.add("moved_tasks_per_instance_" + name,
             static_cast<double>(moved) / total);
    json.add("repair_ms_per_instance_" + name, repair_ms / total);
    json.add("repair_wallclock_share_" + name, share);
    json.add("blind_repair_moved_per_instance_" + name,
             static_cast<double>(blind_moved) / total);
  }
  bench::rule();
  bench::verdict(all_feasible_or_typed,
                 "every mapped instance is feasible or carries typed "
                 "constraint violations");

  bench::title("M2", "Scenario-set session: per-class fronts, thread replay");
  bench::note("constrained DseSession over a scenario subset, re-run at");
  bench::note("1 / 3 / hardware threads and compared point-for-point");
  bench::rule();

  const int kSessionScenarios = quick ? 9 : 30;
  core::ScenarioSet subset(graphs.begin(), graphs.begin() + kSessionScenarios);
  core::DseSpace space;
  space.pe_counts = {6};
  space.thread_counts = {2};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D};
  space.fabrics = {tech::Fabric::kAsip};
  core::DseConfig dc;
  dc.pe_kind_groups = kKinds;
  dc.pe_capacity = 24.0;

  std::vector<core::DsePoint> reference;
  std::vector<std::vector<std::size_t>> reference_fronts;
  bool threads_bit_identical = true;
  double session_ms = 0.0;
  for (const int threads : {1, 3, 0}) {
    core::DseConfig tdc = dc;
    tdc.num_threads = threads;
    core::DseSession session(
        core::DseProblem{core::TaskGraph("unused"),
                         core::ObjectiveSpace::default_space(),
                         {}, tech::node_90nm()},
        subset, space, ac, tdc);
    const auto t0 = std::chrono::steady_clock::now();
    session.front();
    if (threads == 1) {
      session_ms = ms_since(t0);
      reference = session.points();
      reference_fronts = session.scenario_fronts();
      continue;
    }
    if (session.points().size() != reference.size()) {
      threads_bit_identical = false;
      continue;
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
      threads_bit_identical =
          threads_bit_identical && points_equal(reference[i],
                                                session.points()[i]);
    }
  }

  // Average front size per scenario class (graph names begin with the
  // shape: "layered_0", "series-parallel_1", ...).
  std::map<std::string, std::pair<double, int>> per_class;
  for (std::size_t s = 0; s < reference_fronts.size(); ++s) {
    const std::string& name = subset[s].name();
    const std::string cls = name.substr(0, name.find('_'));
    per_class[cls].first += static_cast<double>(reference_fronts[s].size());
    per_class[cls].second += 1;
  }
  std::printf("  %zu scenarios x 2 candidates in %.1f ms (1 thread)\n",
              subset.size(), session_ms);
  for (const auto& [cls, acc] : per_class) {
    const double avg = acc.first / acc.second;
    std::printf("  avg front size %-16s %.2f\n", cls.c_str(), avg);
    json.add("front_avg_" + cls, avg);
  }
  bench::rule();
  bench::verdict(threads_bit_identical,
                 "constrained scenario sweep is bit-identical at 1, 3, and "
                 "hardware thread counts");

  json.add("quick", quick);
  json.add("scenarios", static_cast<long long>(kScenarios));
  json.add("platforms", static_cast<long long>(platforms.size()));
  json.add("session_scenarios", static_cast<long long>(kSessionScenarios));
  json.add("session_points", static_cast<long long>(reference.size()));
  json.add("feasible_or_typed", all_feasible_or_typed);
  json.add("threads_bit_identical", threads_bit_identical);
  json.write();
  return all_feasible_or_typed && threads_bit_identical ? 0 : 1;
}
