#pragma once

// Shared by the DSE benches: session-API equivalent of the retired run_dse
// monolith — the default objective triple driven through the standard
// DseSession pipeline. Same signature as the test suites' twin in
// tests/dse_session_util.hpp (kept separate because the trees share no
// include directory); change both together.

#include <vector>

#include "soc/core/dse_session.hpp"
#include "soc/core/objective_space.hpp"

namespace bench {

inline std::vector<soc::core::DsePoint> run_session(
    const soc::core::TaskGraph& graph, const soc::core::DseSpace& space,
    const soc::tech::ProcessNode& node,
    const soc::core::ObjectiveWeights& weights = {},
    const soc::core::AnnealConfig& anneal = {},
    const soc::core::DseConfig& config = {}) {
  soc::core::DseSession session(
      soc::core::DseProblem{graph, soc::core::ObjectiveSpace::default_space(),
                            weights, node},
      space, anneal, config);
  return session.run();
}

}  // namespace bench
