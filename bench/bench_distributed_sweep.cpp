// Distributed sharded sweep, metered end to end. R1: the merge contract —
// the coordinator's merged DsePoint stream, fronts, and extras must be
// byte-identical to the single-machine DseSession at 1, 2, and 4 workers
// (field-exact through the canonical dse_wire encoding; one flipped
// mantissa bit fails the bench). R2: shard scaling — cold stage-1 wall
// time at 1/2/4 in-process workers; the >= 3x speedup at 4 workers gate
// (>= 2x under --quick) is enforced only when the host exposes >= 4
// hardware threads (the loopback workers are real threads). R3: transport
// economics — wire words per streamed point, steal/cancel counts, and the
// coordinator's merge overhead as a fraction of the run. Emits
// BENCH_distributed_sweep.json (schema in README.md); the exit code gates
// every active verdict, and CTest runs `--quick` as test
// bench.distributed_sweep_quick.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/distributed_sweep.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/dse_wire.hpp"
#include "soc/core/eval_cache.hpp"
#include "soc/core/objective_space.hpp"

using namespace soc;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Byte-identity through the canonical wire codec: equal word streams
/// prove every field of every point matches bit for bit.
bool streams_identical(const std::vector<core::DsePoint>& a,
                       const std::vector<core::DsePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (core::marshal_point(a[i]) != core::marshal_point(b[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && !std::strcmp(argv[1], "--quick");

  const core::TaskGraph graph = apps::mjpeg_task_graph();
  core::DseSpace space;
  space.pe_counts = quick ? std::vector<int>{4, 8}
                          : std::vector<int>{4, 8, 16};
  space.thread_counts = {2, 4};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D,
                      noc::TopologyKind::kCrossbar};
  space.fabrics = {tech::Fabric::kAsip};
  core::AnnealConfig anneal;
  anneal.iterations = quick ? 800 : 4000;
  core::DseConfig config;
  config.num_threads = 1;  // workers are the parallelism under test
  const core::DseProblem problem{graph, core::ObjectiveSpace::default_space(),
                                 core::ObjectiveWeights{}, tech::node_90nm()};
  const core::ScenarioSet scenarios{graph};

  bench::title("DIST", "distributed sharded sweep over the dsoc loopback");
  bench::note("graph " + graph.name() + ", " +
              std::to_string(space.pe_counts.size() *
                             space.thread_counts.size() *
                             space.topologies.size()) +
              " candidates, anneal " + std::to_string(anneal.iterations) +
              " iters" + (quick ? " (--quick)" : ""));

  bench::JsonReport json("distributed_sweep");
  json.add("quick", quick);
  bool all_ok = true;

  // ---- Reference: the single-machine serial session. -----------------------
  core::EvalCache::global().clear();
  const auto ts0 = std::chrono::steady_clock::now();
  core::DseSession session(problem, scenarios, space, anneal, config);
  session.run();
  const double t_session = ms_since(ts0);
  const std::vector<core::DsePoint>& ref = session.points();
  bench::note("serial session: " + std::to_string(ref.size()) + " points in " +
              std::to_string(t_session) + " ms");
  json.add("points", static_cast<long long>(ref.size()));
  json.add("t_session_ms", t_session);

  // ---- R1 + R2: merge contract and cold shard scaling. ---------------------
  bench::rule();
  double t_by_workers[3] = {0.0, 0.0, 0.0};
  core::SweepStats stats_w4{};
  bool identical_all = true;
  const int worker_counts[3] = {1, 2, 4};
  for (int wi = 0; wi < 3; ++wi) {
    const int workers = worker_counts[wi];
    core::EvalCache::global().clear();  // cold: scaling, not memo reuse
    const auto t0 = std::chrono::steady_clock::now();
    const core::DistributedSweepResult res = core::run_distributed_sweep(
        problem, scenarios, space, anneal, config, workers);
    t_by_workers[wi] = ms_since(t0);
    const bool identical = streams_identical(res.points, ref) &&
                           res.front == session.front_indices() &&
                           res.scenario_fronts == session.scenario_fronts();
    identical_all &= identical;
    if (workers == 4) stats_w4 = res.stats;
    char line[200];
    std::snprintf(line, sizeof line,
                  "%d worker%s: %8.1f ms  (%llu ranges, %llu steals, %llu "
                  "dup)  merge %s",
                  workers, workers == 1 ? " " : "s", t_by_workers[wi],
                  static_cast<unsigned long long>(res.stats.ranges_issued),
                  static_cast<unsigned long long>(res.stats.steals),
                  static_cast<unsigned long long>(res.stats.duplicate_points),
                  identical ? "byte-identical" : "DIVERGED");
    bench::note(line);
    json.add("t_workers_" + std::to_string(workers) + "_ms", t_by_workers[wi]);
    json.add("merge_identical_w" + std::to_string(workers), identical);
  }
  bench::verdict(identical_all,
                 "merged stream byte-identical to the session at 1/2/4 "
                 "workers");
  all_ok &= identical_all;

  const double speedup4 = t_by_workers[0] / t_by_workers[2];
  const double speedup_floor = quick ? 2.0 : 3.0;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_speedup = hw >= 4;
  json.add("speedup_4", speedup4);
  json.add("speedup_floor", speedup_floor);
  json.add("hardware_concurrency", static_cast<long long>(hw));
  json.add("speedup_gate_active", gate_speedup);
  if (gate_speedup) {
    const bool ok = speedup4 >= speedup_floor;
    char claim[140];
    std::snprintf(claim, sizeof claim,
                  "4 in-process workers >= %.1fx over 1 (measured %.2fx)",
                  speedup_floor, speedup4);
    bench::verdict(ok, claim);
    all_ok &= ok;
  } else {
    char notice[140];
    std::snprintf(notice, sizeof notice,
                  "speedup gate skipped: %u hardware thread%s < 4 (measured "
                  "%.2fx, recorded ungated)",
                  hw, hw == 1 ? "" : "s", speedup4);
    bench::note(notice);
  }

  // ---- R3: transport economics at 4 workers. -------------------------------
  bench::rule();
  const double bytes_per_point =
      stats_w4.points_streamed
          ? 4.0 * static_cast<double>(stats_w4.words_on_wire) /
                static_cast<double>(stats_w4.points_streamed)
          : 0.0;
  const double merge_pct =
      stats_w4.wall_ms > 0.0 ? 100.0 * stats_w4.merge_ms / stats_w4.wall_ms
                             : 0.0;
  char econ[200];
  std::snprintf(econ, sizeof econ,
                "wire: %llu words total, %.0f bytes/point; merge %.3f ms "
                "(%.2f%% of run)",
                static_cast<unsigned long long>(stats_w4.words_on_wire),
                bytes_per_point, stats_w4.merge_ms, merge_pct);
  bench::note(econ);
  json.add("words_on_wire_w4", static_cast<long long>(stats_w4.words_on_wire));
  json.add("bytes_per_point_w4", bytes_per_point);
  json.add("steals_w4", static_cast<long long>(stats_w4.steals));
  json.add("cancels_w4", static_cast<long long>(stats_w4.cancels_sent));
  json.add("duplicate_points_w4",
           static_cast<long long>(stats_w4.duplicate_points));
  json.add("merge_ms_w4", stats_w4.merge_ms);
  json.add("merge_overhead_pct_w4", merge_pct);
  // The merge must stay bookkeeping, not a second sweep.
  const bool merge_cheap = merge_pct < 20.0;
  bench::verdict(merge_cheap, "coordinator merge under 20% of the run");
  all_ok &= merge_cheap;

  bench::rule();
  json.add("all_ok", all_ok);
  json.write();
  bench::verdict(all_ok, "distributed sweep contracts hold");
  return all_ok ? 0 : 1;
}
