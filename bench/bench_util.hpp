#pragma once

// Shared console-table formatting for the experiment harnesses. Every
// bench prints the rows EXPERIMENTS.md records, plus a PASS/FAIL verdict
// against the paper's qualitative claim.

#include <cstdio>
#include <string>

namespace bench {

inline void title(const std::string& id, const std::string& text) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id.c_str(), text.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

inline void rule() {
  std::printf("  ----------------------------------------------------------------\n");
}

inline void verdict(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "REPRODUCED" : "DIVERGED", claim.c_str());
}

}  // namespace bench
