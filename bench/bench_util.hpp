#pragma once

// Shared console-table formatting for the experiment harnesses. Every
// bench prints the rows EXPERIMENTS.md records, plus a PASS/FAIL verdict
// against the paper's qualitative claim. JsonReport additionally persists
// the headline numbers as BENCH_<name>.json so perf trajectories can be
// diffed across commits.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace bench {

inline void title(const std::string& id, const std::string& text) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id.c_str(), text.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

inline void rule() {
  std::printf("  ----------------------------------------------------------------\n");
}

inline void verdict(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "REPRODUCED" : "DIVERGED", claim.c_str());
}

/// Flat machine-readable summary of one bench run. Keys are emitted in
/// insertion order; write() produces BENCH_<name>.json in the working
/// directory (one object, no nesting — trivially diffable / greppable).
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    entries_.emplace_back(key, buf);
  }
  void add(const std::string& key, long long value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + escaped(value) + "\"");
  }
  // Without this overload a string literal would convert to bool (standard
  // conversion beats the user-defined one to const std::string&).
  void add(const std::string& key, const char* value) {
    add(key, std::string(value));
  }
  void add(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }

  /// Writes the file and prints its path; returns false (with a notice) if
  /// the working directory is not writable.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::printf("  (could not write %s)\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", escaped(entries_[i].first).c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("  json summary -> %s\n", path.c_str());
    return true;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace bench
