// C5: characterization of the topology range "bus, ring, tree to
// full-crossbar" (Section 6.1): zero-load latency, saturation throughput,
// latency-vs-load curves, and the >100-cycle latency regime.
#include <vector>

#include "bench_util.hpp"
#include "soc/noc/traffic.hpp"

using namespace soc;
using noc::TopologyKind;

namespace {

constexpr TopologyKind kKinds[] = {
    TopologyKind::kBus,      TopologyKind::kRing,
    TopologyKind::kBinaryTree, TopologyKind::kFatTree,
    TopologyKind::kMesh2D,   TopologyKind::kTorus2D,
    TopologyKind::kCrossbar,
};

}  // namespace

int main() {
  const noc::MeasureConfig fast{5'000, 40'000};

  bench::title("C5a", "Topology characterization at N=32 (uniform, 8-flit pkts)");
  bench::rule();
  std::printf("  %-12s %9s %9s %11s %12s\n", "topology", "diameter", "avg hops",
              "zero-load", "sat flits/n/c");
  double sat_bus = 0, sat_mesh = 0, sat_xbar = 0;
  for (const auto k : kKinds) {
    const auto topo = noc::make_topology(k, 32);
    const double zl = noc::zero_load_latency(k, 32, {}, 8);
    noc::TrafficConfig t;
    t.packet_flits = 8;
    const double sat = noc::find_saturation_rate(k, 32, {}, t, fast);
    if (k == TopologyKind::kBus) sat_bus = sat;
    if (k == TopologyKind::kMesh2D) sat_mesh = sat;
    if (k == TopologyKind::kCrossbar) sat_xbar = sat;
    std::printf("  %-12s %9d %9.2f %11.1f %12.4f\n", noc::to_string(k),
                topo->diameter_hops(), topo->average_hops(), zl, sat);
  }
  bench::verdict(sat_bus < sat_mesh && sat_mesh <= sat_xbar * 1.01,
                 "ordering bus < mesh <= crossbar in saturation throughput");

  bench::title("C5b", "Latency vs offered load (mesh vs bus vs crossbar, N=32)");
  bench::rule();
  const std::vector<double> rates{0.02, 0.05, 0.1, 0.2, 0.3, 0.5};
  std::printf("  %-8s", "rate");
  for (const auto k : {TopologyKind::kBus, TopologyKind::kMesh2D,
                       TopologyKind::kFatTree, TopologyKind::kCrossbar}) {
    std::printf(" %12s", noc::to_string(k));
  }
  std::printf("   (avg latency, cycles; '-' = saturated)\n");
  for (const double r : rates) {
    std::printf("  %-8.2f", r);
    for (const auto k : {TopologyKind::kBus, TopologyKind::kMesh2D,
                         TopologyKind::kFatTree, TopologyKind::kCrossbar}) {
      noc::TrafficConfig t;
      t.injection_rate = r;
      t.packet_flits = 8;
      const auto pt = noc::measure_load_point(k, 32, {}, t, fast);
      if (pt.saturated) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.1f", pt.avg_latency);
      }
    }
    std::printf("\n");
  }

  bench::title("C5c", "NoC latency exceeds 100 cycles (Section 6.1 regime)");
  bench::note("64-node mesh near saturation with technology-scaled links");
  bench::rule();
  noc::NetworkConfig scaled;
  scaled.link_latency_cycles = 4;  // multi-cycle repeated global wires @50nm
  noc::TrafficConfig t;
  t.injection_rate = 0.30;
  t.packet_flits = 8;
  const auto pt = noc::measure_load_point(TopologyKind::kMesh2D, 64, scaled, t,
                                          fast);
  std::printf("  mesh-64: offered %.2f accepted %.3f avg %.1f p95 %.1f p99 %.1f\n",
              pt.offered_flits_per_node_cycle, pt.accepted_flits_per_node_cycle,
              pt.avg_latency, pt.p95_latency, pt.p99_latency);
  bench::verdict(pt.p95_latency > 100.0,
                 "complex NoC exhibits latencies >100 cycles under load");

  bench::title("C5d", "Pattern sensitivity (N=16 ring vs mesh vs fat-tree)");
  bench::rule();
  std::printf("  %-16s %10s %10s %10s   (saturation rate)\n", "pattern", "ring",
              "mesh", "fat-tree");
  for (const auto pat : {noc::TrafficPattern::kUniform,
                         noc::TrafficPattern::kNeighbor,
                         noc::TrafficPattern::kBitComplement,
                         noc::TrafficPattern::kHotspot}) {
    std::printf("  %-16s", noc::to_string(pat));
    for (const auto k : {TopologyKind::kRing, TopologyKind::kMesh2D,
                         TopologyKind::kFatTree}) {
      noc::TrafficConfig tc;
      tc.pattern = pat;
      tc.packet_flits = 8;
      std::printf(" %10.4f", noc::find_saturation_rate(k, 16, {}, tc, fast));
    }
    std::printf("\n");
  }
  return 0;
}
