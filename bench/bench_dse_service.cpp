// The always-on DSE service, metered end to end. R1: concurrent-client
// multiplexing over the in-process loopback — three clients submit
// distinct sweeps at once; every streamed result must be byte-identical
// to that client's own single-machine DseSession (field-exact through the
// canonical dse_wire encoding), time-to-first-point and wall time are
// recorded per client, and the fairness gate requires every client to see
// its first point before any client's sweep finishes (round-robin
// interleaving, not head-of-line service). R2: control-plane contracts —
// a cancelled sweep frees its slot for the queued one (prompt
// reclamation) and a full service refuses with the typed busy reply. R3:
// the real socket — the same sweep over a TCP connection on an ephemeral
// loopback port, with time-to-first-point and wire-word volume. Emits
// BENCH_dse_service.json (schema in README.md); the exit code gates every
// verdict, and CTest runs `--quick` as test bench.dse_service_quick.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/dse_wire.hpp"
#include "soc/core/eval_cache.hpp"
#include "soc/core/objective_space.hpp"
#include "soc/svc/dse_client.hpp"
#include "soc/svc/dse_service.hpp"
#include "soc/tlm/loopback.hpp"
#include "soc/tlm/socket.hpp"

using namespace soc;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Byte-identity through the canonical wire codec.
bool streams_identical(const std::vector<core::DsePoint>& a,
                       const std::vector<core::DsePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (core::marshal_point(a[i]) != core::marshal_point(b[i])) return false;
  }
  return true;
}

/// The per-client sweep: same candidate axes, distinct anneal budgets so
/// the three concurrent sweeps are genuinely different problems.
core::SweepRequest make_request(const core::TaskGraph& graph, int iterations,
                                bool validate) {
  core::SweepRequest req;
  req.problem = core::DseProblem{graph, core::ObjectiveSpace::default_space(),
                                 core::ObjectiveWeights{}, tech::node_90nm()};
  req.scenarios = core::ScenarioSet{graph};
  req.space.pe_counts = {4, 8, 16};
  req.space.thread_counts = {2, 4};
  req.space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D,
                          noc::TopologyKind::kCrossbar};
  req.space.fabrics = {tech::Fabric::kAsip};
  req.anneal.iterations = iterations;
  req.config.validate_pareto = validate;
  req.config.use_eval_cache = false;  // meter real evaluations, not memo hits
  return req;
}

/// Ground truth for one request: a local DseSession run.
struct LocalRef {
  std::vector<core::DsePoint> points;
  std::vector<std::size_t> front;
  std::vector<std::vector<std::size_t>> scenario_fronts;
};

LocalRef run_local(const core::SweepRequest& req) {
  core::DseSession session(req.problem, req.scenarios, req.space, req.anneal,
                           req.config);
  LocalRef ref;
  ref.points = session.run();
  ref.front = session.front();
  ref.scenario_fronts = session.scenario_fronts();
  return ref;
}

struct ClientOutcome {
  bool identical = false;
  double t_first_ms = 0.0;
  double t_done_ms = 0.0;
  std::uint64_t streamed = 0;
  std::string error;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && !std::strcmp(argv[1], "--quick");
  const int base_iters = quick ? 2000 : 6000;

  const core::TaskGraph graph = apps::mjpeg_task_graph();
  bench::title("SVC", "always-on DSE service: multiplexed streaming sweeps");
  bench::note("graph " + graph.name() + ", 18-candidate grid, anneal " +
              std::to_string(base_iters) + "+ iters" +
              (quick ? " (--quick)" : ""));

  bench::JsonReport json("dse_service");
  json.add("quick", quick);
  bool all_ok = true;

  // ---- R1: three concurrent clients over the loopback. ---------------------
  // Distinct budgets => distinct sweeps; the shared clock t0 makes the
  // per-client first-point/done timestamps comparable for the fairness gate.
  core::SweepRequest requests[3] = {
      make_request(graph, base_iters, false),
      make_request(graph, base_iters + base_iters / 2, false),
      make_request(graph, base_iters * 2, false)};
  LocalRef refs[3];
  for (int i = 0; i < 3; ++i) refs[i] = run_local(requests[i]);

  tlm::LoopbackTransport bus;
  svc::DseServiceConfig cfg;
  cfg.max_active = 3;
  svc::DseService service(bus, svc::kServiceTerminal, cfg);

  ClientOutcome outcomes[3];
  // All three clients submit through the same start gate: without it the
  // first sweep can finish before the last client has even submitted, and
  // the fairness window below would measure submission skew, not
  // scheduling. (The shared t0 predates the gate — that common offset
  // cancels out of the max-first vs min-done comparison.)
  std::latch start_gate(3);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < 3; ++i) {
      clients.emplace_back([&, i] {
        ClientOutcome& out = outcomes[i];
        try {
          svc::DseClient client(bus, static_cast<noc::TerminalId>(i + 1));
          start_gate.arrive_and_wait();
          std::atomic<bool> first_seen{false};
          const std::uint32_t id = client.submit(
              requests[i], [&](std::uint64_t, const core::DsePoint&, bool) {
                if (!first_seen.exchange(true)) out.t_first_ms = ms_since(t0);
              });
          const svc::SweepResult res = client.wait(id);
          out.t_done_ms = ms_since(t0);
          out.streamed = res.points_streamed;
          out.identical = streams_identical(res.points, refs[i].points) &&
                          res.front == refs[i].front &&
                          res.scenario_fronts == refs[i].scenario_fronts;
        } catch (const std::exception& e) {
          out.error = e.what();
        }
      });
    }
    for (auto& c : clients) c.join();
  }

  bool identical_all = true;
  double max_first = 0.0;
  double min_done = 1e300;
  for (int i = 0; i < 3; ++i) {
    const ClientOutcome& out = outcomes[i];
    if (!out.error.empty()) {
      bench::note("client " + std::to_string(i) + " FAILED: " + out.error);
      identical_all = false;
      continue;
    }
    identical_all &= out.identical;
    if (out.t_first_ms > max_first) max_first = out.t_first_ms;
    if (out.t_done_ms < min_done) min_done = out.t_done_ms;
    char line[160];
    std::snprintf(line, sizeof line,
                  "client %d: first point %7.1f ms, done %7.1f ms, %llu "
                  "points streamed  %s",
                  i, out.t_first_ms, out.t_done_ms,
                  static_cast<unsigned long long>(out.streamed),
                  out.identical ? "identical" : "DIVERGED");
    bench::note(line);
    const std::string k = "client" + std::to_string(i);
    json.add(k + "_t_first_ms", out.t_first_ms);
    json.add(k + "_t_done_ms", out.t_done_ms);
    json.add(k + "_points_streamed", static_cast<long long>(out.streamed));
  }
  json.add("identical_all", identical_all);
  bench::verdict(identical_all,
                 "3 concurrent clients byte-identical to their local sessions");
  all_ok &= identical_all;

  // Fairness: round-robin scheduling must interleave the sweeps, so every
  // client sees its first point before any client's whole sweep finishes.
  const bool fair = max_first < min_done && min_done < 1e300;
  json.add("fairness_max_first_ms", max_first);
  json.add("fairness_min_done_ms", min_done);
  char fairline[160];
  std::snprintf(fairline, sizeof fairline,
                "fair interleaving: slowest first-point %.1f ms < fastest "
                "completion %.1f ms",
                max_first, min_done);
  bench::verdict(fair, fairline);
  all_ok &= fair;

  // ---- R2: cancel reclamation and typed backpressure. ----------------------
  bench::rule();
  {
    tlm::LoopbackTransport cbus;
    svc::DseServiceConfig ccfg;
    ccfg.pool_threads = 1;
    ccfg.max_active = 1;
    ccfg.max_queued = 1;
    svc::DseService csvc(cbus, svc::kServiceTerminal, ccfg);
    svc::DseClient client(cbus, 1);

    // A deliberately heavy sweep holds the slot; cancel it on first point.
    core::SweepRequest heavy = make_request(graph, 60000, false);
    std::atomic<std::uint32_t> heavy_id{0};
    std::atomic<bool> sent{false};
    const std::uint32_t a = client.submit(
        heavy, [&](std::uint64_t, const core::DsePoint&, bool) {
          if (!sent.exchange(true)) client.cancel(heavy_id.load());
        });
    heavy_id.store(a);
    const std::uint32_t b =
        client.submit(make_request(graph, base_iters, false));
    bool busy_refused = false;
    try {
      (void)client.submit(make_request(graph, base_iters, false));
    } catch (const svc::ServiceBusy&) {
      busy_refused = true;
    }
    const auto tc0 = std::chrono::steady_clock::now();
    const svc::SweepResult res_a = client.wait(a);
    const svc::SweepResult res_b = client.wait(b);
    const double t_reclaim = ms_since(tc0);

    const bool cancel_ok = res_a.cancelled && res_a.points_evaluated < 18 &&
                           !res_b.cancelled && res_b.points.size() == 18;
    json.add("cancel_points_evaluated",
             static_cast<long long>(res_a.points_evaluated));
    json.add("cancel_to_queued_done_ms", t_reclaim);
    json.add("cancel_ok", cancel_ok);
    char cline[160];
    std::snprintf(cline, sizeof cline,
                  "cancel frees the slot: %llu/18 evaluated, queued sweep "
                  "done %.1f ms later",
                  static_cast<unsigned long long>(res_a.points_evaluated),
                  t_reclaim);
    bench::verdict(cancel_ok, cline);
    all_ok &= cancel_ok;

    json.add("busy_refused", busy_refused);
    bench::verdict(busy_refused,
                   "full service refuses with the typed busy reply");
    all_ok &= busy_refused;
    csvc.stop();
    cbus.shutdown();
  }

  // ---- R3: the real socket on an ephemeral loopback port. ------------------
  bench::rule();
  {
    auto server = tlm::SocketTransport::listen(0);
    svc::DseService ssvc(*server, svc::kServiceTerminal);
    auto cbus = tlm::SocketTransport::connect("127.0.0.1", server->port());
    svc::DseClient client(*cbus, 1);

    const core::SweepRequest req = make_request(graph, base_iters, !quick);
    const LocalRef ref = run_local(req);
    const auto ts0 = std::chrono::steady_clock::now();
    const std::uint32_t id = client.submit(req);
    const svc::SweepResult res = client.wait(id);
    const double t_tcp = ms_since(ts0);

    const bool tcp_identical = streams_identical(res.points, ref.points) &&
                               res.front == ref.front &&
                               res.scenario_fronts == ref.scenario_fronts;
    const std::uint64_t wire_words = cbus->words_on_wire();
    const double bytes_per_point =
        res.points_streamed
            ? 4.0 * static_cast<double>(wire_words) /
                  static_cast<double>(res.points_streamed)
            : 0.0;
    char sline[200];
    std::snprintf(sline, sizeof sline,
                  "tcp sweep: first point %.1f ms, wall %.1f ms, %llu wire "
                  "words (%.0f bytes/point)",
                  res.time_to_first_point_ms, t_tcp,
                  static_cast<unsigned long long>(wire_words),
                  bytes_per_point);
    bench::note(sline);
    json.add("tcp_t_first_ms", res.time_to_first_point_ms);
    json.add("tcp_wall_ms", t_tcp);
    json.add("tcp_wire_words", static_cast<long long>(wire_words));
    json.add("tcp_bytes_per_point", bytes_per_point);
    json.add("tcp_identical", tcp_identical);
    bench::verdict(tcp_identical,
                   "socket-streamed sweep byte-identical to the local session");
    all_ok &= tcp_identical;

    ssvc.stop();
    cbus->shutdown();
    server->shutdown();
  }

  service.stop();
  bus.shutdown();

  bench::rule();
  json.add("all_ok", all_ok);
  json.write();
  bench::verdict(all_ok, "always-on DSE service contracts hold");
  return all_ok ? 0 : 1;
}
