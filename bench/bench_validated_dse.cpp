// Simulation-in-the-loop DSE: the analytic sweep prunes the design space,
// then every Pareto survivor is re-scored by replaying its mapped traffic
// on the event-driven NoC simulator (DseConfig.validate_pareto). This bench
// checks the methodology's load-bearing assumption — that the analytic
// ranking of the front survives contention-aware simulation — and records
// the analytic-vs-simulated rank correlation in BENCH_validated_dse.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "bench_dse_util.hpp"
#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/objective_space.hpp"

using namespace soc;

namespace {

/// Fractional ranks (average over ties) of `v`, ascending.
std::vector<double> ranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

/// Spearman's rho between two equal-length samples (Pearson on ranks).
double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  return va > 0.0 && vb > 0.0 ? cov / std::sqrt(va * vb) : 1.0;
}

bool same_sim_figures(const std::vector<core::DsePoint>& a,
                      const std::vector<core::DsePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].validated != b[i].validated ||
        a[i].sim_throughput_per_kcycle != b[i].sim_throughput_per_kcycle ||
        a[i].sim_to_analytic_ratio != b[i].sim_to_analytic_ratio ||
        a[i].sim_peak_link_utilization != b[i].sim_peak_link_utilization ||
        a[i].sim_avg_packet_latency != b[i].sim_avg_packet_latency ||
        a[i].sim_network_saturated != b[i].sim_network_saturated) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::JsonReport json("validated_dse");

  core::DseSpace space;
  space.pe_counts = {4, 8, 16, 32};
  space.thread_counts = {2, 4};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kRing,
                      noc::TopologyKind::kMesh2D, noc::TopologyKind::kFatTree,
                      noc::TopologyKind::kCrossbar};
  space.fabrics = {tech::Fabric::kAsip, tech::Fabric::kGeneralPurposeCpu};
  core::AnnealConfig ac;
  ac.iterations = 3'000;
  const auto& node = tech::node_90nm();
  const auto graph = apps::mjpeg_task_graph();

  bench::title("V1", "Two-stage DSE: analytic sweep + NoC-replay validation");
  bench::note("stage 1 scores every candidate from the static hop matrix;");
  bench::note("stage 2 replays each Pareto mapping on the event-driven NoC");
  bench::rule();

  core::DseConfig dc;
  dc.validate_pareto = true;
  const auto t0 = std::chrono::steady_clock::now();
  const auto points = bench::run_session(graph, space, node, {}, ac, dc);
  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  std::printf("  %-28s %10s %10s %7s %9s\n", "pareto candidate", "analytic",
              "simulated", "ratio", "peak link");
  std::vector<double> analytic_tp, simulated_tp;
  int saturated = 0;
  double ratio_sum = 0.0, ratio_min = 1e300;
  for (const auto& pt : points) {
    if (!pt.validated) continue;
    char label[64];
    std::snprintf(label, sizeof label, "%d PEs x%dT %s", pt.candidate.num_pes,
                  pt.candidate.threads_per_pe,
                  noc::to_string(pt.candidate.topology));
    std::printf("  %-28s %10.2f %10.2f %7.2f %8.0f%%%s\n", label,
                pt.throughput_per_kcycle, pt.sim_throughput_per_kcycle,
                pt.sim_to_analytic_ratio, 100.0 * pt.sim_peak_link_utilization,
                pt.sim_network_saturated ? " SAT" : "");
    analytic_tp.push_back(pt.throughput_per_kcycle);
    simulated_tp.push_back(pt.sim_throughput_per_kcycle);
    saturated += pt.sim_network_saturated ? 1 : 0;
    ratio_sum += pt.sim_to_analytic_ratio;
    ratio_min = std::min(ratio_min, pt.sim_to_analytic_ratio);
  }
  const auto front = static_cast<long long>(analytic_tp.size());
  const double rho = spearman(analytic_tp, simulated_tp);
  bench::rule();
  std::printf("  %lld Pareto points validated (of %zu candidates) in %.0f ms\n",
              front, points.size(), total_ms);
  std::printf("  analytic-vs-simulated Spearman rho = %.3f | mean ratio %.2f "
              "| min ratio %.2f | %d saturated\n",
              rho, front ? ratio_sum / static_cast<double>(front) : 0.0,
              ratio_min, saturated);
  bench::verdict(front >= 2 && rho >= 0.7,
                 "analytic Pareto ordering survives contention-aware "
                 "simulation (rho >= 0.7)");
  json.add("front_points", front);
  json.add("candidates", static_cast<long long>(points.size()));
  json.add("spearman_rho", rho);
  json.add("mean_sim_to_analytic_ratio",
           front ? ratio_sum / static_cast<double>(front) : 0.0);
  json.add("min_sim_to_analytic_ratio", front ? ratio_min : 0.0);
  json.add("saturated_points", static_cast<long long>(saturated));
  json.add("two_stage_ms", total_ms);

  bench::title("V2", "Determinism: validated sweep at 1 thread vs all cores");
  bench::rule();
  core::DseConfig serial = dc;
  serial.num_threads = 1;
  const auto points_serial = bench::run_session(graph, space, node, {}, ac, serial);
  const bool deterministic = same_sim_figures(points, points_serial);
  bench::verdict(deterministic,
                 "simulated figures bit-identical across thread counts");
  json.add("deterministic_across_threads", deterministic);

  bench::title("V3", "Closed-loop headroom: network-limited round rate");
  bench::note("closed loop windows rounds in flight, so it measures what the");
  bench::note("NoC alone sustains — headroom over the compute-paced open loop");
  bench::rule();
  core::DseConfig closed = dc;
  closed.validation.mode = noc::ReplayConfig::Mode::kClosedLoop;
  const auto points_closed = bench::run_session(graph, space, node, {}, ac, closed);
  double open_best = 0.0, closed_best = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].validated) continue;
    open_best = std::max(open_best, points[i].sim_throughput_per_kcycle);
    closed_best =
        std::max(closed_best, points_closed[i].sim_throughput_per_kcycle);
  }
  std::printf("  best open-loop %.2f items/kcyc | best closed-loop (network "
              "limit) %.2f items/kcyc\n",
              open_best, closed_best);
  bench::verdict(closed_best > 0.0,
                 "closed-loop replay yields a positive network-limited rate");
  json.add("best_open_loop_items_per_kcycle", open_best);
  json.add("best_closed_loop_items_per_kcycle", closed_best);

  json.write();
  return 0;
}
