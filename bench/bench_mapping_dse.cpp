// A2: automatic application-to-platform mapping (MultiFlex, Section 7.2)
// — mapper quality comparison and the platform DSE sweep with Pareto
// extraction, on the three bundled application graphs. Headline numbers
// land in BENCH_mapping_dse.json for cross-commit perf tracking.
#include <chrono>

#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/objective_space.hpp"
#include "soc/core/validate.hpp"

using namespace soc;
using core::ObjectiveWeights;

namespace {

core::PlatformDesc mixed_platform(int pes) {
  std::vector<core::PeDesc> descs;
  for (int i = 0; i < pes; ++i) {
    // Heterogeneous pool: mostly ASIPs, some GP CPUs, a couple of
    // eFPGA/hardwired engines — the Figure 2 FPPA mix.
    core::PeDesc d;
    if (i % 4 == 3) {
      d.fabric = tech::Fabric::kGeneralPurposeCpu;
    } else if (i == 0) {
      d.fabric = tech::Fabric::kHardwired;
    } else if (i == 1) {
      d.fabric = tech::Fabric::kEfpga;
    } else {
      d.fabric = tech::Fabric::kAsip;
    }
    descs.push_back(d);
  }
  return core::PlatformDesc(std::move(descs), noc::TopologyKind::kMesh2D,
                            tech::node_90nm());
}

}  // namespace

int main() {
  bench::JsonReport json("mapping_dse");

  bench::title("A2a", "Mapper quality: random vs greedy vs annealing");
  bench::rule();
  std::printf("  %-16s %14s %14s %14s\n", "graph", "random(best5)", "greedy",
              "anneal");
  bool anneal_wins = true;
  for (const auto& graph : {apps::ipv4_task_graph(), apps::mjpeg_task_graph(),
                            apps::wlan_task_graph()}) {
    const auto platform = mixed_platform(8);
    const ObjectiveWeights w;
    sim::Rng rng(7);
    double rnd = 1e18;
    for (int i = 0; i < 5; ++i) {
      rnd = std::min(rnd, core::evaluate_mapping(
                              graph, platform,
                              core::random_mapping(graph, platform, rng), w)
                              .objective);
    }
    const double greedy =
        core::evaluate_mapping(graph, platform,
                               core::greedy_mapping(graph, platform, w), w)
            .objective;
    core::AnnealConfig ac;
    ac.iterations = 15'000;
    const double anneal =
        core::evaluate_mapping(graph, platform,
                               core::anneal_mapping(graph, platform, w, ac), w)
            .objective;
    anneal_wins &= anneal <= greedy + 1e-9 && anneal <= rnd + 1e-9;
    std::printf("  %-16s %14.2f %14.2f %14.2f\n", graph.name().c_str(), rnd,
                greedy, anneal);
    json.add(graph.name() + ".anneal_objective", anneal);
    json.add(graph.name() + ".greedy_objective", greedy);
  }
  bench::verdict(anneal_wins, "annealing >= greedy >= random on every graph");

  bench::title("A2b", "Mapping detail: IPv4 graph on the mixed platform");
  bench::rule();
  {
    const auto graph = apps::ipv4_task_graph();
    const auto platform = mixed_platform(8);
    core::AnnealConfig ac;
    ac.iterations = 15'000;
    const auto m = core::anneal_mapping(graph, platform, {}, ac);
    const auto cost = core::evaluate_mapping(graph, platform, m);
    for (int i = 0; i < graph.node_count(); ++i) {
      const int pe = m[static_cast<std::size_t>(i)];
      std::printf("  %-14s -> pe%-2d (%s)\n", graph.node(i).name.c_str(), pe,
                  tech::fabric_profile(platform.pe(pe).fabric).name);
    }
    bench::rule();
    std::printf("  bottleneck %.1f cyc/pkt | comm %.1f word-hops | %.1f pJ | "
                "latency %.0f cyc | %s\n",
                cost.bottleneck_cycles, cost.comm_word_hops,
                cost.energy_pj_per_item, cost.pipeline_latency,
                cost.feasible ? "feasible" : "INFEASIBLE");
    bench::verdict(cost.feasible, "anneal finds a feasible heterogeneous mapping");
  }

  bench::title("A2c", "Platform DSE sweep (mjpeg graph), Pareto front");
  bench::note("homogeneous candidates: mjpeg maps fully onto ASIP pools;");
  bench::note("DSP-only candidates are infeasible (display DMA needs ASIP/HW)");
  bench::rule();
  core::DseSpace space;
  space.pe_counts = {4, 8, 16};
  space.thread_counts = {2, 4};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D,
                      noc::TopologyKind::kCrossbar};
  space.fabrics = {tech::Fabric::kAsip, tech::Fabric::kDsp};
  core::AnnealConfig quick;
  quick.iterations = 3'000;
  core::DseConfig dc;  // num_threads = 0: shard across every hardware core
  const auto t_dse = std::chrono::steady_clock::now();
  core::DseSession session(
      core::DseProblem{apps::mjpeg_task_graph(),
                       core::ObjectiveSpace::default_space(), {},
                       tech::node_90nm()},
      space, quick, dc);
  auto points = session.run();
  const double dse_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t_dse)
                            .count();
  int shown = 0;
  for (const auto& pt : points) {
    if (pt.pareto_optimal) {
      std::printf("  %s\n", core::to_string(pt).c_str());
      ++shown;
    }
  }
  bench::rule();
  std::printf("  %zu candidates evaluated in %.0f ms, %d on the Pareto front\n",
              points.size(), dse_ms, shown);
  bench::verdict(shown >= 2 && shown < static_cast<int>(points.size()),
                 "DSE exposes a non-trivial throughput/area/power frontier");
  json.add("dse.candidates", static_cast<long long>(points.size()));
  json.add("dse.pareto_points", static_cast<long long>(shown));
  json.add("dse.sweep_ms", dse_ms);
  json.add("dse.mapper", points.empty() ? dc.mapper : points[0].mapper);

  bench::title("A2d", "Cross-level validation: analytic model vs simulation");
  bench::note("each mapping runs as a real DSOC pipeline on the event-driven");
  bench::note("FPPA at 90% of its predicted capacity (Section 3: 'feed the ...");
  bench::note("figures up to higher abstraction levels')");
  bench::rule();
  std::printf("  %-24s %10s %10s %8s %8s\n", "case", "predicted", "measured",
              "ratio", "pe util");
  bool coarse_ok = true;
  {
    // Coarse-grained pipeline: the fast model should be accurate.
    core::TaskGraph g("coarse-chain");
    std::vector<int> ids;
    for (int i = 0; i < 4; ++i) {
      core::TaskNode t;
      t.name = "s" + std::to_string(i);
      t.work_ops = 400;
      ids.push_back(g.add_node(std::move(t)));
    }
    for (int i = 0; i + 1 < 4; ++i) g.add_edge({ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(i + 1)], 8});
    core::PlatformDesc p(
        std::vector<core::PeDesc>(4, core::PeDesc{tech::Fabric::kGeneralPurposeCpu, 4, {}, 0.0}),
        noc::TopologyKind::kMesh2D, tech::node_90nm());
    const auto r = core::validate_mapping(g, p, core::Mapping{0, 1, 2, 3});
    coarse_ok = r.ratio > 1.0 && r.ratio < 1.3;
    std::printf("  %-24s %10.0f %10.1f %8.2f %8.2f\n", "coarse 4-stage chain",
                r.predicted_bottleneck_cycles, r.measured_cycles_per_item,
                r.ratio, r.bottleneck_pe_utilization);
    json.add("validate.coarse_ratio", r.ratio);
  }
  {
    // Fine-grained IPv4 pipeline: marshalling/NI overheads the analytic
    // bottleneck ignores become visible — quantifying the model's limits.
    const auto g = apps::ipv4_task_graph();
    core::PlatformDesc p(
        std::vector<core::PeDesc>(8, core::PeDesc{tech::Fabric::kAsip, 4, {}, 0.0}),
        noc::TopologyKind::kMesh2D, tech::node_90nm());
    core::AnnealConfig ac;
    ac.iterations = 4000;
    const auto m = core::anneal_mapping(g, p, {}, ac);
    const auto r = core::validate_mapping(g, p, m);
    std::printf("  %-24s %10.0f %10.1f %8.2f %8.2f\n", "fine-grained ipv4",
                r.predicted_bottleneck_cycles, r.measured_cycles_per_item,
                r.ratio, r.bottleneck_pe_utilization);
  }
  bench::rule();
  bench::verdict(coarse_ok,
                 "analytic mapper predictions hold on-platform for "
                 "coarse-grained pipelines (fine-grained ones expose "
                 "marshalling overheads, motivating the cycle-level layer)");
  json.write();
  return 0;
}
