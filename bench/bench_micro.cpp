// A3: google-benchmark micro suite for the simulation substrate — event
// queue, NoC transit, ISS retire rate, trie build/lookup, mapper cost
// evaluation. Keeps the simulator honest about its own performance.
#include <benchmark/benchmark.h>

#include "soc/apps/lpm.hpp"
#include "soc/apps/route_gen.hpp"
#include "soc/core/mapping.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/noc/traffic.hpp"
#include "soc/proc/assembler.hpp"
#include "soc/proc/cpu.hpp"
#include "soc/sim/event_queue.hpp"

namespace {

using namespace soc;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(static_cast<sim::Cycle>((i * 7919) % 5000),
                    [&sum, i] { sum += static_cast<std::uint64_t>(i); });
    }
    q.run_all();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_NocMeshTransit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    noc::Network net(noc::make_mesh(n), {}, q);
    for (int i = 0; i < 200; ++i) {
      net.inject(static_cast<noc::TerminalId>(i % n),
                 static_cast<noc::TerminalId>((i * 13 + 5) % n), 8);
    }
    q.run_all();
    benchmark::DoNotOptimize(net.delivered());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_NocMeshTransit)->Arg(16)->Arg(64);

void BM_IssRetireRate(benchmark::State& state) {
  static const proc::Program prog = proc::assemble(R"(
      addi r1, r0, 0
      addi r2, r0, 10000
    loop:
      addi r1, r1, 1
      mul  r3, r1, r1
      andi r3, r3, 0xFF
      bne  r1, r2, loop
      halt
  )");
  for (auto _ : state) {
    proc::Cpu cpu(prog, 4096);
    const auto r = cpu.run();
    benchmark::DoNotOptimize(r.instructions);
  }
  state.SetItemsProcessed(state.iterations() * 40002);
}
BENCHMARK(BM_IssRetireRate);

void BM_TrieBuild(benchmark::State& state) {
  const auto routes = apps::generate_routes(
      {.count = static_cast<std::size_t>(state.range(0)), .seed = 3});
  for (auto _ : state) {
    apps::MultibitTrie t(8);
    t.build(routes);
    benchmark::DoNotOptimize(t.size_words());
  }
}
BENCHMARK(BM_TrieBuild)->Arg(10'000)->Arg(100'000);

void BM_TrieLookup(benchmark::State& state) {
  const auto routes = apps::generate_routes({.count = 50'000, .seed = 3});
  apps::MultibitTrie t(8);
  t.build(routes);
  const auto trace = apps::generate_lookup_trace(routes, 4096, 0.9, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup(trace[i++ & 4095]).next_hop);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLookup);

void BM_MappingEvaluate(benchmark::State& state) {
  const auto graph = apps::mjpeg_task_graph();
  core::PlatformDesc platform(
      std::vector<core::PeDesc>(8, core::PeDesc{tech::Fabric::kAsip, 4, {}, 0.0}),
      noc::TopologyKind::kMesh2D, tech::node_90nm());
  const core::Mapping m{0, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::evaluate_mapping(graph, platform, m).objective);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MappingEvaluate);

void BM_NocLoadPoint(benchmark::State& state) {
  for (auto _ : state) {
    noc::TrafficConfig t;
    t.injection_rate = 0.1;
    const auto pt = noc::measure_load_point(noc::TopologyKind::kMesh2D, 16, {},
                                            t, noc::MeasureConfig{500, 4000});
    benchmark::DoNotOptimize(pt.avg_latency);
  }
}
BENCHMARK(BM_NocLoadPoint);

}  // namespace

BENCHMARK_MAIN();
