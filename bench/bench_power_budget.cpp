// P1: "low-power is a must, not just an added-value feature" (Section 4)
// — power-limited vs area-limited PE counts per node, and the fabric
// choice the power wall forces ("the objective of low-power will favor the
// use of hardware over software in many cases").
#include <algorithm>

#include "bench_util.hpp"
#include "soc/platform/cost.hpp"
#include "soc/tech/clock_model.hpp"

using namespace soc;

int main() {
  bench::title("P1a", "Power per always-active PE across the roadmap");
  bench::rule();
  std::printf("  %-8s %10s", "node", "clk GHz");
  for (const auto f : {tech::Fabric::kGeneralPurposeCpu, tech::Fabric::kDsp,
                       tech::Fabric::kAsip}) {
    std::printf(" %11s", tech::fabric_profile(f).name);
  }
  std::printf("   (mW per PE at full duty)\n");
  for (const auto& n : tech::roadmap()) {
    const tech::ClockModel ck(n);
    std::printf("  %-8s %10.2f", n.name.c_str(), ck.asic_ghz());
    for (const auto f : {tech::Fabric::kGeneralPurposeCpu, tech::Fabric::kDsp,
                         tech::Fabric::kAsip}) {
      std::printf(" %11.1f", platform::pe_power_mw(n, f));
    }
    std::printf("\n");
  }

  bench::title("P1b", "The dark-silicon squeeze (200mm2 die, 1W handset budget)");
  bench::note("PEs the area affords vs PEs the power budget can keep busy at");
  bench::note("full clock: the usable fraction collapses with scaling");
  bench::rule();
  std::printf("  %-8s %12s %12s %14s %12s\n", "node", "area-limited",
              "1W-limited", "all-on power W", "usable %");
  double usable_130 = 0.0, usable_32 = 0.0;
  for (const auto& n : tech::roadmap()) {
    const int by_area = platform::pes_per_die(n, 200.0, 4);
    const int w1 = platform::pes_within_power(
        n, tech::Fabric::kGeneralPurposeCpu, 1000.0, 4);
    const double all_on_w =
        by_area * platform::pe_power_mw(n, tech::Fabric::kGeneralPurposeCpu, 4) /
        1000.0;
    const double usable =
        by_area > 0 ? 100.0 * std::min(w1, by_area) / by_area : 0.0;
    if (n.name == "130nm") usable_130 = usable;
    if (n.name == "32nm") usable_32 = usable;
    std::printf("  %-8s %12d %12d %14.1f %11.1f%%\n", n.name.c_str(), by_area,
                w1, all_on_w, usable);
  }
  bench::rule();
  bench::verdict(usable_32 < 0.5 * usable_130,
                 "from the paper's 130nm 'today' to 32nm, the fraction of the "
                 "die's PEs a 1W budget keeps busy falls >2x — the power wall "
                 "behind 'low-power is a must'");

  bench::title("P1c", "Fabric choice under a fixed power budget");
  bench::note("ops/s each fabric delivers from a 500mW budget at 90nm — why");
  bench::note("'the objective of low-power will favor hardware over software'");
  bench::rule();
  const auto& n90 = tech::node_90nm();
  const tech::ClockModel ck90(n90);
  double best_sw = 0.0, hw_ops = 0.0;
  for (const auto f : {tech::Fabric::kGeneralPurposeCpu, tech::Fabric::kDsp,
                       tech::Fabric::kAsip, tech::Fabric::kEfpga,
                       tech::Fabric::kHardwired}) {
    const auto& p = tech::fabric_profile(f);
    const tech::EnergyModel em(n90);
    const double ghz =
        f == tech::Fabric::kEfpga ? ck90.efpga_ghz() : ck90.asic_ghz();
    // Gops/s per mW = ops/cycle * GHz / mW-per-engine, scaled to budget.
    const double engine_mw = em.op_energy_pj(f) * ghz * p.ops_per_cycle;
    const double gops = p.ops_per_cycle * ghz / engine_mw * 500.0;
    if (f == tech::Fabric::kHardwired) hw_ops = gops;
    if (f == tech::Fabric::kGeneralPurposeCpu || f == tech::Fabric::kDsp ||
        f == tech::Fabric::kAsip) {
      best_sw = std::max(best_sw, gops);
    }
    std::printf("  %-11s %10.1f Gops/s from 500 mW\n", p.name, gops);
  }
  bench::rule();
  bench::verdict(hw_ops > 5.0 * best_sw,
                 "hardwired logic turns the same power budget into >5x the "
                 "throughput of any programmable fabric");
  return 0;
}
