// C4: global-wire scaling — repeated/unrepeated delay, isochronous radius
// and the 6-10-cycle cross-chip prediction at 50 nm (Section 6.1, [12]).
#include "bench_util.hpp"
#include "soc/tech/variation.hpp"
#include "soc/tech/wire_model.hpp"

using namespace soc;

int main() {
  bench::title("C4", "Cross-chip wire delay vs process node");
  bench::note("paper: 'In 50 nm technologies ... the intra-chip propagation");
  bench::note("        delay will be between six and ten clock cycles'");
  bench::note("model: distributed-RC global wire, optimal repeaters, 15 mm die,");
  bench::note("       corner-to-corner Manhattan route, 14-FO4 clock");
  bench::rule();
  std::printf("  %-8s %7s %9s %10s %11s %12s %11s\n", "node", "clk GHz",
              "ps/mm", "seg mm", "1-cyc mm", "x-chip ps", "x-chip cyc");
  double cycles_at_50 = 0.0;
  for (const auto& n : tech::roadmap()) {
    const tech::WireModel w(n);
    const auto r = w.repeated(30.0);
    const double cyc = w.cross_chip_cycles();
    if (n.name == "50nm") cycles_at_50 = cyc;
    std::printf("  %-8s %7.2f %9.1f %10.2f %11.2f %12.0f %11.2f\n",
                n.name.c_str(), n.clock_ghz(), r.delay_per_mm_ps, r.segment_mm,
                w.critical_length_mm(), r.delay_ps, cyc);
  }
  bench::rule();
  bench::note("unrepeated vs repeated delay for a 10 mm global wire:");
  std::printf("  %-8s %14s %14s %8s\n", "node", "unrepeated ps", "repeated ps",
              "ratio");
  for (const auto& n : tech::roadmap()) {
    const tech::WireModel w(n);
    const double u = w.unrepeated_delay_ps(10.0);
    const double r = w.repeated(10.0).delay_ps;
    std::printf("  %-8s %14.0f %14.0f %8.1f\n", n.name.c_str(), u, r, u / r);
  }
  bench::rule();
  std::printf("  cross-chip delay at the 50nm node: %.1f cycles\n", cycles_at_50);
  bench::verdict(cycles_at_50 >= 6.0 && cycles_at_50 <= 10.0,
                 "6-10 clock cycles cross-chip at 50 nm");

  bench::title("V1", "On-chip variation: the statistical-design guardband");
  bench::note("Section 4: OCV 'will lead to statistical design'. Clock period");
  bench::note("needed so ALL critical paths meet timing at 99% yield, vs the");
  bench::note("deterministic nominal period.");
  bench::rule();
  std::printf("  %-8s %8s", "node", "sigma");
  for (const int paths : {100, 1'000, 10'000, 100'000}) {
    std::printf(" %8dp", paths);
  }
  std::printf("   (guardband %% of nominal)\n");
  double gb50 = 0.0;
  for (const auto& n : tech::roadmap()) {
    const auto v = tech::variation_for(n);
    std::printf("  %-8s %7.1f%%", n.name.c_str(), 100.0 * v.sigma_fraction);
    for (const int paths : {100, 1'000, 10'000, 100'000}) {
      const double gb = tech::guardband_fraction(n, paths);
      if (n.name == "50nm" && paths == 10'000) gb50 = gb;
      std::printf(" %8.1f%%", 100.0 * gb);
    }
    std::printf("\n");
  }
  bench::rule();
  bench::verdict(gb50 > 0.2,
                 "worst-case margining costs >20% of the clock at 50nm: "
                 "statistical design becomes mandatory");
  return 0;
}
