// EvalContext topology reuse: meters (via noc::topology_build_stats) how
// many router graphs a validated DSE sweep builds and floorplans under the
// staged DseSession — exactly two per candidate, stage 2 adding zero — and
// compares against the uncached replay path the retired run_dse monolith
// took (rebuild workload + validator-internal rebuild: three extra builds
// per validated Pareto point), with per-candidate evaluation and
// per-point validation wall-clock for both. Emits BENCH_session_reuse.json.
// `--quick` shrinks the sweep for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/mapping_validator.hpp"
#include "soc/core/objective_space.hpp"
#include "soc/noc/topology.hpp"

using namespace soc;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::JsonReport json("session_reuse");

  core::DseSpace space;
  space.pe_counts = quick ? std::vector<int>{4, 8} : std::vector<int>{4, 8, 16};
  space.thread_counts = quick ? std::vector<int>{2} : std::vector<int>{2, 4};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D,
                      noc::TopologyKind::kCrossbar};
  space.fabrics = {tech::Fabric::kAsip};
  space.nodes = {*tech::find_node("65nm")};  // real multi-cycle wires
  core::AnnealConfig ac;
  ac.iterations = quick ? 400 : 2'000;
  core::DseConfig dc;
  dc.die_mm2 = 225.0;
  dc.validate_pareto = true;
  const auto graph = apps::mjpeg_task_graph();

  bench::title("R1", "Session sweep: topology builds metered end to end");
  bench::note("EvalContext contract: one cost interconnect + one PE");
  bench::note("interconnect per candidate, shared with the stage-2 replay");
  bench::rule();

  core::DseSession session(
      core::DseProblem{graph, core::ObjectiveSpace::default_space(), {},
                       tech::node_90nm()},
      space, ac, dc);
  noc::reset_topology_build_stats();
  auto t0 = std::chrono::steady_clock::now();
  session.evaluate();
  const double eval_ms = ms_since(t0);
  const auto stats_stage1 = noc::topology_build_stats();
  session.front();
  t0 = std::chrono::steady_clock::now();
  session.validate();
  const double validate_cached_ms = ms_since(t0);
  const auto stats_total = noc::topology_build_stats();

  const auto n = session.points().size();
  const auto f = session.front_indices().size();
  const auto builds = stats_total.builds;
  const auto floorplans = stats_total.floorplans;
  const auto stage2_builds = stats_total.builds - stats_stage1.builds;
  std::printf("  %zu candidates, %zu validated front points\n", n, f);
  std::printf("  stage 1: %llu builds, %llu floorplans (%.2f per candidate)\n",
              static_cast<unsigned long long>(stats_stage1.builds),
              static_cast<unsigned long long>(stats_stage1.floorplans),
              static_cast<double>(stats_stage1.builds) /
                  static_cast<double>(n));
  std::printf("  stage 2: %llu additional builds (topology reuse)\n",
              static_cast<unsigned long long>(stage2_builds));
  std::printf("  per-candidate evaluation %.2f ms | cached validation "
              "%.2f ms/point\n",
              eval_ms / static_cast<double>(n),
              f ? validate_cached_ms / static_cast<double>(f) : 0.0);
  bench::rule();
  const bool exactly_once = builds == 2 * n && floorplans == 2 * n &&
                            stage2_builds == 0;
  bench::verdict(exactly_once,
                 "each candidate's interconnect is built/floorplanned "
                 "exactly once across both stages");

  bench::title("R2", "Before/after: the uncached replay path, re-measured");
  bench::note("the retired monolith re-derived each Pareto point's workload");
  bench::note("and let the validator rebuild its network: 3 builds per point");
  bench::rule();

  noc::reset_topology_build_stats();
  t0 = std::chrono::steady_clock::now();
  for (const std::size_t i : session.front_indices()) {
    // What run_dse's stage 2 did per point: rebuild the whole candidate
    // workload (cost + PE topologies), then hand the validator a platform
    // it rebuilds its own network topology from.
    const core::EvalContext fresh(graph, session.points()[i].candidate, dc);
    core::MappingValidator validator(fresh.work(), fresh.platform(),
                                     session.points()[i].mapping,
                                     dc.validation);
    (void)validator.run();
  }
  const double validate_uncached_ms = ms_since(t0);
  const auto stats_uncached = noc::topology_build_stats();
  std::printf("  uncached stage 2: %llu builds for %zu points | %.2f "
              "ms/point (cached: %.2f)\n",
              static_cast<unsigned long long>(stats_uncached.builds), f,
              f ? validate_uncached_ms / static_cast<double>(f) : 0.0,
              f ? validate_cached_ms / static_cast<double>(f) : 0.0);
  bench::rule();
  const bool uncached_rebuilds = stats_uncached.builds == 3 * f;
  bench::verdict(uncached_rebuilds,
                 "the uncached path really pays 3 extra builds per "
                 "validated point (what EvalContext caching removes)");

  json.add("candidates", static_cast<long long>(n));
  json.add("front_points", static_cast<long long>(f));
  json.add("session_builds", static_cast<long long>(builds));
  json.add("session_floorplans", static_cast<long long>(floorplans));
  json.add("session_stage2_builds", static_cast<long long>(stage2_builds));
  json.add("builds_per_candidate",
           static_cast<double>(builds) / static_cast<double>(n));
  json.add("uncached_stage2_builds",
           static_cast<long long>(stats_uncached.builds));
  json.add("monolith_equivalent_builds",
           static_cast<long long>(2 * n + 3 * f));
  json.add("eval_ms_per_candidate", eval_ms / static_cast<double>(n));
  json.add("validate_cached_ms_per_point",
           f ? validate_cached_ms / static_cast<double>(f) : 0.0);
  json.add("validate_uncached_ms_per_point",
           f ? validate_uncached_ms / static_cast<double>(f) : 0.0);
  json.add("builds_exactly_once", exactly_once);

  json.write();
  return exactly_once && uncached_rebuilds ? 0 : 1;
}
