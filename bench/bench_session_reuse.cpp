// Stage-1 reuse, metered end to end. R1/R2: EvalContext topology reuse —
// how many router graphs a validated DSE sweep builds and floorplans under
// the staged DseSession (exactly two per candidate, stage 2 adding zero)
// versus the uncached replay path the retired run_dse monolith took. R3:
// the cross-sweep EvalCache — a warm identical sweep must replay the cold
// sweep's DsePoint stream bit for bit at >= 5x stage-1 speedup, and an
// overlapping superset sweep must hit on every shared candidate. Emits
// BENCH_session_reuse.json (schema documented in README.md); the exit code
// gates every verdict, and CTest runs `--quick` as test
// bench.session_reuse_quick. `--quick` shrinks the sweep for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/dse_session.hpp"
#include "soc/core/eval_cache.hpp"
#include "soc/core/mapping_validator.hpp"
#include "soc/core/objective_space.hpp"
#include "soc/noc/topology.hpp"

using namespace soc;

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Field-exact DsePoint equality — every analytic, silicon, and stage-2
/// figure compared with ==, no tolerance. The warm-vs-cold contract is
/// bit-exactness, so a single flipped mantissa bit fails the bench.
bool points_identical(const core::DsePoint& a, const core::DsePoint& b) {
  return a.candidate.num_pes == b.candidate.num_pes &&
         a.candidate.threads_per_pe == b.candidate.threads_per_pe &&
         a.candidate.topology == b.candidate.topology &&
         a.candidate.pe_fabric == b.candidate.pe_fabric &&
         a.candidate.node.name == b.candidate.node.name &&
         a.mapping_cost.bottleneck_cycles == b.mapping_cost.bottleneck_cycles &&
         a.mapping_cost.comm_word_hops == b.mapping_cost.comm_word_hops &&
         a.mapping_cost.energy_pj_per_item ==
             b.mapping_cost.energy_pj_per_item &&
         a.mapping_cost.pipeline_latency == b.mapping_cost.pipeline_latency &&
         a.mapping_cost.feasible == b.mapping_cost.feasible &&
         a.mapping_cost.objective == b.mapping_cost.objective &&
         a.silicon.total_area_mm2 == b.silicon.total_area_mm2 &&
         a.silicon.peak_dynamic_mw == b.silicon.peak_dynamic_mw &&
         a.silicon.leakage_mw == b.silicon.leakage_mw &&
         a.silicon.die_mm2 == b.silicon.die_mm2 &&
         a.silicon.noc_wire_mm == b.silicon.noc_wire_mm &&
         a.scenario == b.scenario && a.scenario_name == b.scenario_name &&
         a.mapping == b.mapping && a.mapper == b.mapper &&
         a.throughput_per_kcycle == b.throughput_per_kcycle &&
         a.mw_per_throughput == b.mw_per_throughput &&
         a.pareto_optimal == b.pareto_optimal && a.validated == b.validated &&
         a.sim_throughput_per_kcycle == b.sim_throughput_per_kcycle &&
         a.sim_to_analytic_ratio == b.sim_to_analytic_ratio &&
         a.sim_peak_link_utilization == b.sim_peak_link_utilization &&
         a.sim_avg_packet_latency == b.sim_avg_packet_latency &&
         a.sim_network_saturated == b.sim_network_saturated;
}

bool streams_identical(const std::vector<core::DsePoint>& a,
                       const std::vector<core::DsePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!points_identical(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::JsonReport json("session_reuse");

  core::DseSpace space;
  space.pe_counts = quick ? std::vector<int>{4, 8} : std::vector<int>{4, 8, 16};
  space.thread_counts = quick ? std::vector<int>{2} : std::vector<int>{2, 4};
  space.topologies = {noc::TopologyKind::kBus, noc::TopologyKind::kMesh2D,
                      noc::TopologyKind::kCrossbar};
  space.fabrics = {tech::Fabric::kAsip};
  space.nodes = {*tech::find_node("65nm")};  // real multi-cycle wires
  core::AnnealConfig ac;
  ac.iterations = quick ? 400 : 2'000;
  core::DseConfig dc;
  dc.die_mm2 = 225.0;
  dc.validate_pareto = true;
  const auto graph = apps::mjpeg_task_graph();

  bench::title("R1", "Session sweep: topology builds metered end to end");
  bench::note("EvalContext contract: one cost interconnect + one PE");
  bench::note("interconnect per candidate, shared with the stage-2 replay");
  bench::rule();

  core::EvalCache::global().clear();  // R1 is the cold-sweep contract
  core::DseSession session(
      core::DseProblem{graph, core::ObjectiveSpace::default_space(), {},
                       tech::node_90nm()},
      space, ac, dc);
  noc::TopologyBuildStatsScope build_scope;  // delta-metered, no global reset
  auto t0 = std::chrono::steady_clock::now();
  session.evaluate();
  const double eval_ms = ms_since(t0);
  const auto stats_stage1 = build_scope.delta();
  session.front();
  t0 = std::chrono::steady_clock::now();
  session.validate();
  const double validate_cached_ms = ms_since(t0);
  const auto stats_total = build_scope.delta();

  const auto n = session.points().size();
  const auto f = session.front_indices().size();
  const auto builds = stats_total.builds;
  const auto floorplans = stats_total.floorplans;
  const auto stage2_builds = stats_total.builds - stats_stage1.builds;
  std::printf("  %zu candidates, %zu validated front points\n", n, f);
  std::printf("  stage 1: %llu builds, %llu floorplans (%.2f per candidate)\n",
              static_cast<unsigned long long>(stats_stage1.builds),
              static_cast<unsigned long long>(stats_stage1.floorplans),
              static_cast<double>(stats_stage1.builds) /
                  static_cast<double>(n));
  std::printf("  stage 2: %llu additional builds (topology reuse)\n",
              static_cast<unsigned long long>(stage2_builds));
  std::printf("  per-candidate evaluation %.2f ms | cached validation "
              "%.2f ms/point\n",
              eval_ms / static_cast<double>(n),
              f ? validate_cached_ms / static_cast<double>(f) : 0.0);
  bench::rule();
  const bool exactly_once = builds == 2 * n && floorplans == 2 * n &&
                            stage2_builds == 0;
  bench::verdict(exactly_once,
                 "each candidate's interconnect is built/floorplanned "
                 "exactly once across both stages");

  bench::title("R2", "Before/after: the uncached replay path, re-measured");
  bench::note("the retired monolith re-derived each Pareto point's workload");
  bench::note("and let the validator rebuild its network: 3 builds per point");
  bench::rule();

  build_scope.rebase();  // section boundary: meter only the replay below
  t0 = std::chrono::steady_clock::now();
  for (const std::size_t i : session.front_indices()) {
    // What run_dse's stage 2 did per point: rebuild the whole candidate
    // workload (cost + PE topologies), then hand the validator a platform
    // it rebuilds its own network topology from.
    const core::EvalContext fresh(graph, session.points()[i].candidate, dc);
    core::MappingValidator validator(fresh.work(), fresh.platform(),
                                     session.points()[i].mapping,
                                     dc.validation);
    (void)validator.run();
  }
  const double validate_uncached_ms = ms_since(t0);
  const auto stats_uncached = build_scope.delta();
  std::printf("  uncached stage 2: %llu builds for %zu points | %.2f "
              "ms/point (cached: %.2f)\n",
              static_cast<unsigned long long>(stats_uncached.builds), f,
              f ? validate_uncached_ms / static_cast<double>(f) : 0.0,
              f ? validate_cached_ms / static_cast<double>(f) : 0.0);
  bench::rule();
  const bool uncached_rebuilds = stats_uncached.builds == 3 * f;
  bench::verdict(uncached_rebuilds,
                 "the uncached path really pays 3 extra builds per "
                 "validated point (what EvalContext caching removes)");

  bench::title("R3", "Cross-sweep memo: warm replay of an overlapping sweep");
  bench::note("same platform ladder swept twice (the scenario-matrix and");
  bench::note("--quick re-run pattern): the warm pass must be bit-identical");
  bench::rule();

  // Serial sessions: the speedup figure should measure the kernel, not the
  // thread pool. (Thread-count bit-identity is property-tested in
  // tests/test_eval_cache.cpp.)
  core::AnnealConfig ac3;
  ac3.iterations = quick ? 2'000 : 8'000;
  core::DseConfig dc3;
  dc3.die_mm2 = 225.0;
  dc3.num_threads = 1;
  core::DseSpace cold_space = space;
  const core::DseProblem problem3{graph, core::ObjectiveSpace::default_space(),
                                  {}, tech::node_90nm()};

  core::EvalCache::global().clear();
  core::DseSession cold(problem3, cold_space, ac3, dc3);
  build_scope.rebase();
  t0 = std::chrono::steady_clock::now();
  cold.evaluate();
  const double cold_eval_ms = ms_since(t0);
  cold.front();
  const auto cold_builds = build_scope.delta();

  core::DseSession warm(problem3, cold_space, ac3, dc3);
  build_scope.rebase();
  t0 = std::chrono::steady_clock::now();
  warm.evaluate();
  const double warm_eval_ms = ms_since(t0);
  warm.front();
  const auto warm_builds = build_scope.delta();

  const std::size_t n3 = cold.points().size();
  // One annealer iteration proposes (and scores) one move, so stage-1 wall
  // clock over points x iterations approximates one objective evaluation.
  const double objective_evals =
      static_cast<double>(n3) * static_cast<double>(ac3.iterations);
  const double cold_ns_per_eval = 1e6 * cold_eval_ms / objective_evals;
  const double warm_ns_per_eval = 1e6 * warm_eval_ms / objective_evals;
  const double speedup = warm_eval_ms > 0.0 ? cold_eval_ms / warm_eval_ms : 0.0;
  const bool identical = streams_identical(cold.points(), warm.points()) &&
                         cold.front_indices() == warm.front_indices();
  const double warm_hit_rate = warm.cache_stats().hit_rate();
  const double warm_mapping_hit_rate = warm.cache_stats().mapping_hit_rate();

  // Overlapping superset sweep: one more pe_counts entry. The shared
  // candidates sit at the same flat indices (pe_counts is an outer axis),
  // so even the seeded annealer hits on every one of them.
  core::DseSpace super_space = cold_space;
  super_space.pe_counts.push_back(quick ? 16 : 32);
  core::DseSession overlap(problem3, super_space, ac3, dc3);
  overlap.evaluate();
  const double overlap_hit_rate = overlap.cache_stats().hit_rate();
  const std::size_t shared = n3;
  const std::size_t n_overlap = overlap.points().size();

  std::printf("  cold stage 1: %.2f ms (%llu builds) | warm: %.3f ms (%llu "
              "builds)\n",
              cold_eval_ms,
              static_cast<unsigned long long>(cold_builds.builds),
              warm_eval_ms,
              static_cast<unsigned long long>(warm_builds.builds));
  std::printf("  stage-1 speedup %.1fx | %.0f ns/objective-eval cold, %.1f "
              "warm\n",
              speedup, cold_ns_per_eval, warm_ns_per_eval);
  std::printf("  warm hit rate %.3f (mapping %.3f) | overlap %zu/%zu shared, "
              "hit rate %.3f\n",
              warm_hit_rate, warm_mapping_hit_rate, shared, n_overlap,
              overlap_hit_rate);
  bench::rule();
  const bool warm_speedup = speedup >= 5.0 && identical;
  bench::verdict(warm_speedup,
                 "warm sweep >= 5x faster with a bit-identical point stream "
                 "and Pareto front");
  const bool warm_hits = warm_mapping_hit_rate >= 0.999 &&
                         warm_builds.builds == 0;
  bench::verdict(warm_hits,
                 "every warm lookup hits; the warm sweep builds no topology");
  const bool builds_bounded =
      static_cast<double>(builds) / static_cast<double>(n) <= 2.0;
  bench::verdict(builds_bounded, "cold sweep stays at <= 2.00 builds per "
                                 "candidate");

  json.add("candidates", static_cast<long long>(n));
  json.add("front_points", static_cast<long long>(f));
  json.add("session_builds", static_cast<long long>(builds));
  json.add("session_floorplans", static_cast<long long>(floorplans));
  json.add("session_stage2_builds", static_cast<long long>(stage2_builds));
  json.add("builds_per_candidate",
           static_cast<double>(builds) / static_cast<double>(n));
  json.add("uncached_stage2_builds",
           static_cast<long long>(stats_uncached.builds));
  json.add("monolith_equivalent_builds",
           static_cast<long long>(2 * n + 3 * f));
  json.add("eval_ms_per_candidate", eval_ms / static_cast<double>(n));
  json.add("validate_cached_ms_per_point",
           f ? validate_cached_ms / static_cast<double>(f) : 0.0);
  json.add("validate_uncached_ms_per_point",
           f ? validate_uncached_ms / static_cast<double>(f) : 0.0);
  json.add("builds_exactly_once", exactly_once);
  json.add("warm_candidates", static_cast<long long>(n3));
  json.add("cold_eval_ms", cold_eval_ms);
  json.add("warm_eval_ms", warm_eval_ms);
  json.add("stage1_speedup", speedup);
  json.add("ns_per_objective_eval_cold", cold_ns_per_eval);
  json.add("ns_per_objective_eval_warm", warm_ns_per_eval);
  json.add("cache_hit_rate_warm", warm_hit_rate);
  json.add("cache_mapping_hit_rate_warm", warm_mapping_hit_rate);
  json.add("cache_hit_rate_overlap", overlap_hit_rate);
  json.add("overlap_candidates", static_cast<long long>(n_overlap));
  json.add("warm_bit_identical", identical);
  json.add("warm_builds", static_cast<long long>(warm_builds.builds));

  json.write();
  return exactly_once && uncached_rebuilds && warm_speedup && warm_hits &&
                 builds_bounded
             ? 0
             : 1;
}
