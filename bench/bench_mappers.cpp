// Mapper strategy shoot-out: every registered strategy on the IPv4 fastpath
// graph and on a 64-node replicated pipeline (solution quality vs wall time),
// plus the incremental-evaluator speed check — the annealer's hot loop used
// to re-run the full O(V·E) evaluate_mapping on every iteration; it now goes
// through the O(degree) IncrementalObjective and must be >=5x faster at the
// default config on the 64-node graph.
#include <chrono>
#include <cmath>

#include "bench_util.hpp"
#include "soc/apps/graphs.hpp"
#include "soc/core/exact_mapper.hpp"
#include "soc/core/incremental_objective.hpp"
#include "soc/core/mapper.hpp"
#include "soc/core/mapping.hpp"

using namespace soc;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

core::PlatformDesc mixed_platform(int pes) {
  std::vector<core::PeDesc> descs;
  for (int i = 0; i < pes; ++i) {
    core::PeDesc d;
    if (i % 4 == 3) {
      d.fabric = tech::Fabric::kGeneralPurposeCpu;
    } else if (i == 0) {
      d.fabric = tech::Fabric::kHardwired;
    } else if (i == 1) {
      d.fabric = tech::Fabric::kEfpga;
    } else {
      d.fabric = tech::Fabric::kAsip;
    }
    descs.push_back(d);
  }
  return core::PlatformDesc(std::move(descs), noc::TopologyKind::kMesh2D,
                            tech::node_90nm());
}

/// 8-stage pipeline replicated 8x: the 64-node data-parallel workload the
/// DSE's larger candidates map (one stream per 8 PEs).
core::TaskGraph replicated64() {
  core::TaskGraph g("pipe8");
  for (int i = 0; i < 8; ++i) {
    core::TaskNode t;
    t.name = "s" + std::to_string(i);
    t.work_ops = 50.0 + 25.0 * (i % 3);
    g.add_node(std::move(t));
  }
  for (int i = 0; i + 1 < 8; ++i) g.add_edge({i, i + 1, 8.0});
  return g.replicated(8);
}

/// The seed repo's annealer: identical proposal schedule, but every candidate
/// scored with the full evaluator — the baseline the incremental evaluator is
/// measured against.
core::Mapping full_eval_anneal(const core::TaskGraph& g,
                               const core::PlatformDesc& p,
                               const core::ObjectiveWeights& w,
                               const core::AnnealConfig& cfg) {
  sim::Rng rng(cfg.seed);
  core::Mapping current = core::greedy_mapping(g, p, w);
  core::Mapping best = current;
  if (g.node_count() == 0 || p.pe_count() < 2) return best;
  double cur = core::evaluate_mapping(g, p, current, w).objective;
  double best_obj = cur;
  const double decay = std::pow(cfg.t_end / cfg.t_start,
                                1.0 / std::max(1, cfg.iterations - 1));
  double temp = cfg.t_start;
  for (int it = 0; it < cfg.iterations; ++it, temp *= decay) {
    const auto task = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(g.node_count())));
    const int old_pe = current[task];
    int new_pe = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(p.pe_count() - 1)));
    if (new_pe >= old_pe) ++new_pe;
    current[task] = new_pe;
    const double nobj = core::evaluate_mapping(g, p, current, w).objective;
    const double delta = nobj - cur;
    if (delta <= 0.0 || rng.next_double() < std::exp(-delta / temp)) {
      cur = nobj;
      if (cur < best_obj) {
        best_obj = cur;
        best = current;
      }
    } else {
      current[task] = old_pe;
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::JsonReport json("mappers");

  bench::title("M1", "Registered strategies: quality vs wall time");
  bool all_feasible = true;
  struct Scenario {
    const char* label;
    core::TaskGraph graph;
    core::PlatformDesc platform;
  };
  Scenario scenarios[] = {
      {"ipv4 x8-mixed", apps::ipv4_task_graph(), mixed_platform(8)},
      {"pipe8x8 x16-asip", replicated64(),
       core::PlatformDesc(
           std::vector<core::PeDesc>(16, core::PeDesc{tech::Fabric::kAsip, 4, {}, 0.0}),
           noc::TopologyKind::kMesh2D, tech::node_90nm())},
  };
  for (const auto& sc : scenarios) {
    bench::rule();
    std::printf("  %-18s (%d tasks, %d edges)\n", sc.label,
                sc.graph.node_count(), sc.graph.edge_count());
    std::printf("  %-10s %14s %12s %10s\n", "mapper", "objective", "time ms",
                "feasible");
    for (const auto& name : core::registered_mappers()) {
      const auto mapper = core::make_mapper(name);
      sim::Rng rng(2003);
      const auto t0 = Clock::now();
      core::Mapping m;
      try {
        m = mapper->map(sc.graph, sc.platform, {}, rng);
      } catch (const core::ExactBudgetExceeded&) {
        // The exhaustive ground-truth mapper caps its graph size; it is
        // scored on small graphs by bench_mapper_quality instead.
        std::printf("  %-10s %14s %12s %10s\n", name.c_str(), "-", "-",
                    "over-budget");
        continue;
      }
      const double ms = ms_since(t0);
      const auto cost = core::evaluate_mapping(sc.graph, sc.platform, m);
      all_feasible &= cost.feasible;
      std::printf("  %-10s %14.3f %12.3f %10s\n", name.c_str(), cost.objective,
                  ms, cost.feasible ? "yes" : "NO");
      const std::string prefix = std::string(sc.label) + "." + name;
      json.add(prefix + ".objective", cost.objective);
      json.add(prefix + ".ms", ms);
    }
  }
  bench::rule();
  bench::verdict(all_feasible,
                 "every registered strategy returns feasible mappings on "
                 "both scenarios");

  bench::title("M2", "Incremental objective: anneal hot-loop speedup");
  bench::note("default AnnealConfig (20k iterations) on the 64-node graph;");
  bench::note("baseline re-runs the full O(V*E) evaluator every iteration");
  bench::rule();
  {
    const auto g = replicated64();
    core::PlatformDesc p(
        std::vector<core::PeDesc>(16, core::PeDesc{tech::Fabric::kAsip, 4, {}, 0.0}),
        noc::TopologyKind::kMesh2D, tech::node_90nm());
    const core::ObjectiveWeights w;
    const core::AnnealConfig cfg;  // default: 20k iterations

    const auto t_full = Clock::now();
    const auto m_full = full_eval_anneal(g, p, w, cfg);
    const double full_ms = ms_since(t_full);

    const auto t_inc = Clock::now();
    const auto m_inc = core::anneal_mapping(g, p, w, cfg);
    const double inc_ms = ms_since(t_inc);

    const double obj_full = core::evaluate_mapping(g, p, m_full, w).objective;
    const double obj_inc = core::evaluate_mapping(g, p, m_inc, w).objective;
    const double speedup = inc_ms > 0.0 ? full_ms / inc_ms : 0.0;
    // Identical proposal schedule + bit-exact incremental scores => the two
    // loops walk the same trajectory and must land on the same mapping.
    const bool same_result = m_full == m_inc;

    std::printf("  %-22s %12.1f ms   objective %.3f\n", "full re-evaluation",
                full_ms, obj_full);
    std::printf("  %-22s %12.1f ms   objective %.3f\n", "incremental (shipped)",
                inc_ms, obj_inc);
    std::printf("  speedup: %.1fx, trajectories identical: %s\n", speedup,
                same_result ? "yes" : "NO");
    bench::rule();
    bench::verdict(speedup >= 5.0 && same_result,
                   "incremental evaluator makes the annealer >=5x faster "
                   "without changing its search trajectory");
    json.add("anneal64.full_ms", full_ms);
    json.add("anneal64.incremental_ms", inc_ms);
    json.add("anneal64.speedup", speedup);
    json.add("anneal64.same_trajectory", same_result);
    json.add("anneal64.objective", obj_inc);
  }

  json.write();
  return 0;
}
