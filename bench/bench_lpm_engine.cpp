// C8: NPSE-style SRAM multibit-trie LPM vs TCAM — memory, area, power per
// lookup across table sizes, plus the stride ablation.
#include "bench_util.hpp"
#include "soc/apps/lpm.hpp"
#include "soc/apps/route_gen.hpp"

using namespace soc;

int main() {
  const auto& node = tech::node_90nm();

  bench::title("C8a", "SRAM trie vs TCAM across routing-table sizes (90nm)");
  bench::note("paper [9]: 'an SRAM-based approach that is more memory and");
  bench::note("power-efficient' than CAM-based lookup");
  bench::rule();
  std::printf("  %-9s %11s %11s %12s %12s %9s %9s\n", "routes", "trie kbit",
              "tcam kbit", "trie pJ/lkp", "tcam pJ/lkp", "trie cyc",
              "tcam cyc");
  bool power_wins_all = true;
  for (const std::size_t n : {10'000ul, 50'000ul, 100'000ul, 200'000ul}) {
    const auto routes = apps::generate_routes({.count = n, .seed = 21});
    apps::MultibitTrie trie(8);
    trie.build(routes);
    const auto c = apps::compare_lpm_cost(trie, routes.size(), node);
    power_wins_all &=
        c.trie_energy_pj_per_lookup < c.tcam_energy_pj_per_lookup;
    std::printf("  %-9zu %11.0f %11.0f %12.2f %12.1f %9d %9d\n", n,
                c.trie_sram_kbits, c.tcam_kbits, c.trie_energy_pj_per_lookup,
                c.tcam_energy_pj_per_lookup, c.trie_lookup_cycles,
                c.tcam_lookup_cycles);
  }
  bench::verdict(power_wins_all,
                 "SRAM trie beats TCAM on lookup energy at every table size");

  bench::title("C8b", "Stride ablation (100k routes): size vs depth");
  bench::rule();
  std::printf("  %-8s %8s %12s %12s %12s\n", "stride", "levels", "table kbit",
              "avg reads", "worst reads");
  const auto routes = apps::generate_routes({.count = 100'000, .seed = 22});
  const auto trace = apps::generate_lookup_trace(routes, 20'000, 0.9, 23);
  // Stride 16 at this table size allocates 64k-entry nodes per distinct
  // /16 — hundreds of MB; the table column already shows the exponential
  // blow-up by stride 12.
  for (const int stride : {2, 4, 6, 8, 12}) {
    apps::MultibitTrie trie(stride);
    trie.build(routes);
    double reads = 0;
    int worst = 0;
    for (const auto ip : trace) {
      const auto r = trie.lookup(ip);
      reads += r.memory_accesses;
      worst = std::max(worst, r.memory_accesses);
    }
    std::printf("  %-8d %8d %12.0f %12.2f %12d\n", stride, trie.levels(),
                static_cast<double>(trie.size_words()) * 32.0 / 1000.0,
                reads / static_cast<double>(trace.size()), worst);
  }
  bench::note("larger strides buy fewer memory reads with exponential table");
  bench::note("growth: the classic SRAM-LPM engineering knob");
  return 0;
}
