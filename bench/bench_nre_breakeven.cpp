// C1/C2: mask-set and design-NRE break-even volumes across the roadmap,
// and the platform-amortization argument of Section 1.
#include <cinttypes>

#include "bench_util.hpp"
#include "soc/econ/amortization.hpp"
#include "soc/econ/nre_model.hpp"

using namespace soc;

int main() {
  bench::title("C1", "Mask-set NRE and break-even volume vs process node");
  bench::note("paper: mask NRE x10 in ~3 generations, >$1M at 90nm;");
  bench::note("       $5 ASP at 20% margin => >1M units to pay the mask set");
  bench::rule();
  std::printf("  %-8s %6s %12s %16s\n", "node", "year", "mask NRE $", "units to break even");
  const econ::ChipProduct product{};  // $5, 20%
  for (const auto& n : tech::roadmap()) {
    const double mask = econ::NreModel::mask_set_usd(n);
    std::printf("  %-8s %6d %12.3e %16.2e\n", n.name.c_str(), n.year, mask,
                econ::NreModel::break_even_units(mask, product));
  }
  bench::rule();
  const auto n250 = *tech::find_node(std::string("250nm"));
  const double growth3 = econ::NreModel::mask_cost_growth(n250, 3);
  std::printf("  mask-cost growth over 3 generations (250->90nm): %.1fx\n", growth3);
  const double units90 = econ::NreModel::break_even_units(
      econ::NreModel::mask_set_usd(tech::node_90nm()), product);
  bench::verdict(growth3 >= 8 && growth3 <= 12 && units90 > 1e6,
                 "x10/3-generations and >1M-unit mask break-even at 90nm");

  bench::title("C2", "Design NRE break-even volumes");
  bench::note("paper: design NRE $10M-$100M at 0.13um => 10-100M units");
  bench::rule();
  std::printf("  %-8s %14s %14s %12s %12s\n", "node", "design lo $", "design hi $",
              "units lo", "units hi");
  for (const auto& n : tech::roadmap()) {
    const auto d = econ::NreModel::design_nre(n);
    std::printf("  %-8s %14.3e %14.3e %12.2e %12.2e\n", n.name.c_str(), d.low_usd,
                d.high_usd, econ::NreModel::break_even_units(d.low_usd, product),
                econ::NreModel::break_even_units(d.high_usd, product));
  }
  const auto d130 = econ::NreModel::design_nre(*tech::find_node(std::string("130nm")));
  bench::verdict(d130.low_usd == 10e6 && d130.high_usd == 100e6,
                 "$10M-$100M design NRE at 130nm => 10-100M break-even units");

  bench::title("C2b", "Platform amortization vs per-product ASICs");
  bench::note("paper: 'a SoC design platform needs to be amortized over many");
  bench::note("        variants and generations of a product family'");
  bench::rule();
  // Platform: $40M once; each derivative $4M (S/W + config). ASIC: $25M each.
  const double platform_nre = 40e6;
  const double derivative = 4e6;
  const double asic = 25e6;
  const double mask = econ::NreModel::mask_set_usd(tech::node_90nm());
  std::printf("  %-10s %16s %16s\n", "variants", "platform NRE $", "ASIC NRE $");
  for (int n = 1; n <= 8; n *= 2) {
    econ::PlatformAmortization pa(platform_nre, mask);
    for (int i = 0; i < n; ++i) pa.add_variant({1e6, derivative, false});
    std::printf("  %-10d %16.3e %16.3e\n", n, pa.platform_total_nre(),
                pa.asic_total_nre(asic));
  }
  const int be = econ::PlatformAmortization::break_even_variants(
      platform_nre, mask, derivative, asic);
  std::printf("  platform strategy wins from %d variants on\n", be);
  bench::verdict(be >= 2 && be <= 3, "platform amortization wins within a small product family");
  return 0;
}
